/// \file
/// Scenario specifications for the deterministic workload simulator
/// (DESIGN.md §9): composable profiles — vocabulary skew with topic
/// drift and hot-term floods, bursty/diurnal arrival processes, query
/// churn storms and heavy-tailed result sizes — that a ScenarioSpec
/// assembles into one reproducible event stream (sim/event_stream.h).
///
/// Everything in a spec is plain data: two generators constructed from
/// equal specs emit byte-identical streams (the determinism contract is
/// pinned by tests/sim/scenario_determinism_test.cc). The named presets
/// at the bottom form the scenario catalog the soak tier and the
/// examples iterate over; every future workload PR extends that catalog
/// rather than hand-rolling another stream loop.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "stream/window.h"
#include "text/weighting.h"

/// Deterministic scenario simulation: reproducible workload generation
/// and oracle-differential validation over any engine.
namespace ita::sim {

/// Shape of the arrival process on the virtual-time axis.
enum class ArrivalShape {
  kUniform,     ///< fixed inter-arrival gap 1/rate
  kPoisson,     ///< the paper's homogeneous Poisson stream
  kFlashCrowd,  ///< Poisson whose rate multiplies during periodic bursts
  kDiurnal,     ///< Poisson with sinusoidal rate modulation
};

/// Returns a stable display name ("uniform", "poisson", ...).
const char* ArrivalShapeName(ArrivalShape shape);

/// When documents arrive. Burst/diurnal parameters are ignored by the
/// shapes that do not use them.
struct ArrivalProfile {
  ArrivalShape shape = ArrivalShape::kPoisson;
  /// Base mean arrival rate (documents per virtual second, > 0).
  double rate_per_second = 200.0;
  /// Flash crowd: every `burst_period_seconds` the rate is multiplied by
  /// `burst_factor` for `burst_duration_seconds` — the flash-crowd /
  /// breaking-news regime where epochs suddenly carry many more arrivals.
  double burst_factor = 8.0;
  double burst_period_seconds = 30.0;
  double burst_duration_seconds = 3.0;
  /// Diurnal: rate(t) = base * (1 + amplitude * sin(2*pi*t / period)).
  /// `diurnal_amplitude` must stay in [0, 1).
  double diurnal_amplitude = 0.8;
  double diurnal_period_seconds = 600.0;
};

/// What documents say: a Zipfian vocabulary whose rank->term mapping can
/// drift over the stream, optionally spiked by adversarial hot-term
/// floods.
struct VocabularyProfile {
  /// Dictionary size; term ids are 0..dictionary_size-1.
  std::size_t dictionary_size = 2'000;
  /// Zipf exponent of the term distribution (1.0 ≈ natural language).
  double zipf_exponent = 1.0;
  /// Topic drift: every `drift_interval_events` generated documents the
  /// rank->term mapping rotates by `drift_stride`, so the hot vocabulary
  /// cools and formerly cold terms heat up — the regime where stale
  /// per-term structures (threshold trees, postings) stop being hot.
  /// 0 disables drift.
  std::size_t drift_interval_events = 0;
  std::size_t drift_stride = 1;
  /// Adversarial hot-term flood: during a flood window every document
  /// additionally carries the `flood_terms` currently hottest terms with
  /// a heavy repeat count, concentrating all index and threshold-tree
  /// traffic on a handful of term states. Windows open every
  /// `flood_period_events` documents and last `flood_duration_events`
  /// documents; 0 terms or 0 period disables floods.
  std::size_t flood_terms = 0;
  std::size_t flood_period_events = 0;
  std::size_t flood_duration_events = 0;
  /// Document length: log-normal token counts, clamped to the bounds.
  double length_mu = 2.6;
  double length_sigma = 0.5;
  std::size_t min_length = 3;
  std::size_t max_length = 48;
};

/// Who is asking: the continuous-query population and how it churns.
struct QueryProfile {
  /// Queries installed at the start of the stream (ids 1..n, in order).
  std::size_t initial_queries = 16;
  /// The initial population registers only after this many document
  /// events have streamed (0 = before the first epoch). Benchmarks use
  /// this to prefill the window on an empty server.
  std::size_t install_after_events = 0;
  /// Terms per query, drawn from the dictionary with replacement.
  std::size_t terms_per_query = 4;
  /// Result size when `heavy_tailed_k` is false.
  int k = 5;
  /// Heavy-tailed k: k = 1 + Zipf(1.2) rank over [0, k_max) — most
  /// queries ask for a handful of results, a few ask for k_max.
  bool heavy_tailed_k = false;
  int k_max = 64;
  /// When nonzero, draw query terms only from the `hot_max_term` hottest
  /// Zipf ranks (dense-matching queries).
  std::size_t hot_max_term = 0;
  /// Churn storm: every `storm_period_epochs` epochs, unregister the
  /// `storm_size` oldest live queries and register as many fresh ones —
  /// the registration/unregistration storm the slot-map query-state slab
  /// is built for. 0 period = static population.
  std::size_t storm_period_epochs = 0;
  std::size_t storm_size = 0;
};

/// A complete scenario: window, weighting, stream length and the three
/// composed profiles. Plain data — copy, compare, serialize freely.
struct ScenarioSpec {
  /// Catalog name, used in repro lines and test labels.
  std::string name = "scenario";
  /// The sliding-window specification shared by every engine under test.
  WindowSpec window = WindowSpec::CountBased(64);
  /// Impact-weighting scheme for documents and queries.
  WeightingScheme scheme = WeightingScheme::kCosine;
  /// Master seed: every random draw of the generator derives from it.
  std::uint64_t seed = 1;
  /// Total document arrivals the stream produces.
  std::size_t events = 10'000;
  /// Documents per ingest epoch (the last epoch may be smaller).
  std::size_t batch_size = 32;
  /// When true, epoch sizes jitter uniformly in [1, 2*batch_size-1]
  /// (mean batch_size) instead of being constant — exercises ragged
  /// epoch boundaries.
  bool jitter_batch_size = false;
  /// For time-based windows: emit an AdvanceTime half a window past the
  /// stream clock every `advance_period_epochs` epochs, forcing
  /// expiration-only epochs. Ignored for count-based windows.
  bool advance_time = false;
  std::size_t advance_period_epochs = 4;
  /// Pooled mode for benchmarks: pre-generate this many document
  /// compositions and cycle them (stamping fresh arrival times from the
  /// arrival profile) instead of synthesizing every document — keeps
  /// steady-state generation out of the measured path. 0 = every
  /// document freshly synthesized (the test-tier default).
  std::size_t pool_documents = 0;

  ArrivalProfile arrivals;
  VocabularyProfile vocabulary;
  QueryProfile queries;

  /// Structural validation (positive rates, bounds in range, ...).
  Status Validate() const;
};

// --- Scenario catalog ---------------------------------------------------
// Named presets composed from the profiles above; `seed` perturbs every
// random draw while keeping the shape. The soak tier runs the catalog;
// tests/sim/regression_seeds_test.cc replays recorded (name, seed) pairs.

/// Zipfian vocabulary whose hot set drifts across the stream.
ScenarioSpec ZipfDriftScenario(std::uint64_t seed);
/// Flash-crowd arrivals: quiet baseline punctuated by rate bursts.
ScenarioSpec FlashCrowdScenario(std::uint64_t seed);
/// Query churn storms over a time-based window with clock advances.
ScenarioSpec ChurnStormScenario(std::uint64_t seed);
/// Diurnal (sinusoidal) arrival modulation with heavy-tailed k.
ScenarioSpec DiurnalScenario(std::uint64_t seed);
/// Adversarial hot-term floods against dense-matching hot queries.
ScenarioSpec HotTermFloodScenario(std::uint64_t seed);
/// Everything at once: drift + bursts + floods + churn + ragged epochs.
ScenarioSpec MixedStressScenario(std::uint64_t seed);

/// One catalog entry: the preset's name and factory.
struct ScenarioFactory {
  const char* name;
  ScenarioSpec (*make)(std::uint64_t seed);
};

/// The full preset catalog, in a stable order.
const std::vector<ScenarioFactory>& ScenarioCatalog();

/// Looks up a catalog entry by name (nullptr when absent).
const ScenarioFactory* FindScenario(const std::string& name);

}  // namespace ita::sim
