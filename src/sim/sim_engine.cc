#include "sim/sim_engine.h"

#include <sstream>
#include <utility>

#include "core/oracle_server.h"

namespace ita::sim {

namespace {

/// SimEngine over any sequential ContinuousSearchServer.
class SequentialEngine final : public SimEngine {
 public:
  explicit SequentialEngine(std::unique_ptr<ContinuousSearchServer> server)
      : server_(std::move(server)) {}

  std::string name() const override { return server_->name(); }
  StatusOr<QueryId> RegisterQuery(Query query) override {
    return server_->RegisterQuery(std::move(query));
  }
  Status UnregisterQuery(QueryId id) override {
    return server_->UnregisterQuery(id);
  }
  StatusOr<std::vector<DocId>> IngestBatch(
      std::vector<Document> batch) override {
    return server_->IngestBatch(std::move(batch));
  }
  StatusOr<DocId> Ingest(Document document) override {
    return server_->Ingest(std::move(document));
  }
  Status AdvanceTime(Timestamp now) override {
    return server_->AdvanceTime(now);
  }
  StatusOr<std::vector<ResultEntry>> Result(QueryId id) const override {
    return server_->Result(id);
  }
  void SetResultListener(ResultListener listener) override {
    server_->SetResultListener(std::move(listener));
  }
  std::size_t window_size() const override { return server_->window_size(); }
  std::size_t query_count() const override { return server_->query_count(); }
  ServerStats stats() const override { return server_->stats(); }
  void ResetStats() override { server_->ResetStats(); }
  void EnableTracing(std::size_t capacity) override {
    server_->EnableTracing(capacity);
  }
  const obs::EpochTrace* trace() const override { return server_->trace(); }
  obs::EpochTrace* mutable_trace() override {
    return server_->mutable_trace();
  }
  void EnableHotTermTracking(std::size_t capacity) override {
    if (auto* ita = dynamic_cast<ItaServer*>(server_.get())) {
      ita->EnableHotTermTracking(capacity);
    }
  }
  obs::SpaceSavingSketch HotTerms() const override {
    const auto* ita = dynamic_cast<const ItaServer*>(server_.get());
    if (ita != nullptr && ita->hot_terms() != nullptr) {
      return *ita->hot_terms();
    }
    return obs::SpaceSavingSketch(1);
  }
  ContinuousSearchServer* sequential() override { return server_.get(); }

 private:
  std::unique_ptr<ContinuousSearchServer> server_;
};

/// SimEngine over the sharded parallel engine.
class ShardedEngine final : public SimEngine {
 public:
  explicit ShardedEngine(exec::ShardedServerOptions options)
      : server_(std::move(options)) {}

  std::string name() const override { return server_.name(); }
  StatusOr<QueryId> RegisterQuery(Query query) override {
    return server_.RegisterQuery(std::move(query));
  }
  Status UnregisterQuery(QueryId id) override {
    return server_.UnregisterQuery(id);
  }
  StatusOr<std::vector<DocId>> IngestBatch(
      std::vector<Document> batch) override {
    return server_.IngestBatch(std::move(batch));
  }
  StatusOr<DocId> Ingest(Document document) override {
    return server_.Ingest(std::move(document));
  }
  Status AdvanceTime(Timestamp now) override {
    return server_.AdvanceTime(now);
  }
  StatusOr<std::vector<ResultEntry>> Result(QueryId id) const override {
    return server_.Result(id);
  }
  void SetResultListener(ResultListener listener) override {
    server_.SetResultListener(std::move(listener));
  }
  std::size_t window_size() const override { return server_.window_size(); }
  std::size_t query_count() const override { return server_.query_count(); }
  ServerStats stats() const override { return server_.stats(); }
  void ResetStats() override { server_.ResetStats(); }
  void EnableTracing(std::size_t capacity) override {
    server_.EnableTracing(capacity);
  }
  const obs::EpochTrace* trace() const override { return server_.trace(); }
  obs::EpochTrace* mutable_trace() override {
    return server_.mutable_trace();
  }
  void EnableHotTermTracking(std::size_t capacity) override {
    server_.EnableHotTermTracking(capacity);
  }
  obs::SpaceSavingSketch HotTerms() const override {
    return server_.AggregateHotTerms();
  }
  exec::ShardedServer* sharded() override { return &server_; }

 private:
  exec::ShardedServer server_;
};

}  // namespace

std::unique_ptr<SimEngine> MakeSequentialEngine(
    SequentialStrategy strategy, const WindowSpec& window,
    const ItaTuning& ita_tuning, const NaiveTuning& naive_tuning) {
  ServerOptions options;
  options.window = window;
  std::unique_ptr<ContinuousSearchServer> server;
  switch (strategy) {
    case SequentialStrategy::kIta:
      server = std::make_unique<ItaServer>(options, ita_tuning);
      break;
    case SequentialStrategy::kNaive:
      server = std::make_unique<NaiveServer>(options, naive_tuning);
      break;
    case SequentialStrategy::kOracle:
      server = std::make_unique<OracleServer>(options);
      break;
  }
  return std::make_unique<SequentialEngine>(std::move(server));
}

std::unique_ptr<SimEngine> MakeShardedEngine(
    const WindowSpec& window, std::size_t shards, std::size_t threads,
    const ItaTuning& tuning, const exec::RebalanceOptions& rebalance) {
  exec::ShardedServerOptions options;
  options.window = window;
  options.shards = shards;
  options.threads = threads;
  options.tuning = tuning;
  options.rebalance = rebalance;
  return std::make_unique<ShardedEngine>(std::move(options));
}

StatusOr<std::vector<DocId>> ApplyEpoch(SimEngine& engine, SimEpoch&& epoch,
                                        IngestMode mode) {
  const auto fail = [&epoch, &engine](const std::string& what) {
    std::ostringstream os;
    os << "epoch " << epoch.index << ", engine " << engine.name() << ": "
       << what;
    return Status::Internal(os.str());
  };

  for (const QueryId id : epoch.unregister) {
    const Status s = engine.UnregisterQuery(id);
    if (!s.ok()) return fail("unregister " + std::to_string(id) + " failed: " +
                             s.ToString());
  }
  for (std::size_t i = 0; i < epoch.register_queries.size(); ++i) {
    const auto got = engine.RegisterQuery(std::move(epoch.register_queries[i]));
    if (!got.ok()) return fail("register failed: " + got.status().ToString());
    if (*got != epoch.register_ids[i]) {
      return fail("engine assigned query id " + std::to_string(*got) +
                  ", stream predicted " +
                  std::to_string(epoch.register_ids[i]));
    }
  }

  std::vector<DocId> ids;
  if (!epoch.batch.empty()) {
    if (mode == IngestMode::kBatch) {
      auto got = engine.IngestBatch(std::move(epoch.batch));
      if (!got.ok()) return fail("ingest failed: " + got.status().ToString());
      ids = *std::move(got);
    } else {
      ids.reserve(epoch.batch.size());
      for (Document& doc : epoch.batch) {
        const auto got = engine.Ingest(std::move(doc));
        if (!got.ok()) return fail("ingest failed: " + got.status().ToString());
        ids.push_back(*got);
      }
    }
  }

  if (epoch.has_advance) {
    const Status s = engine.AdvanceTime(epoch.advance_to);
    if (!s.ok()) return fail("advance failed: " + s.ToString());
  }
  return ids;
}

StatusOr<std::vector<DocId>> ApplyEpoch(SimEngine& engine,
                                        const SimEpoch& epoch,
                                        IngestMode mode) {
  return ApplyEpoch(engine, SimEpoch{epoch}, mode);  // copy: epoch is shared
}

}  // namespace ita::sim
