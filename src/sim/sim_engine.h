/// \file
/// The uniform driving surface the simulator programs against: one
/// SimEngine wrapper per engine under test — the sequential strategies
/// (ItaServer, NaiveServer, OracleServer) and the sharded parallel
/// engine at any shard count — plus ApplyEpoch, the single
/// implementation of "feed one SimEpoch into an engine". Every consumer
/// of the event stream (the scenario runner, the soak tier, the bench
/// harness) applies epochs through this seam, so the application order
/// (unregister, register, ingest, advance) and the engine-assigned-id
/// assertions exist exactly once.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"
#include "core/ita_server.h"
#include "core/naive_server.h"
#include "core/notifier.h"
#include "core/result_set.h"
#include "core/server.h"
#include "exec/sharded_server.h"
#include "sim/event_stream.h"
#include "stream/window.h"

namespace ita::sim {

/// The engine operations a scenario needs; implemented by thin wrappers
/// over the sequential servers and the sharded engine. Single-threaded
/// like the engines themselves.
class SimEngine {
 public:
  virtual ~SimEngine() = default;

  /// Engine display name ("ita", "oracle", "sharded(ita,4)", ...).
  virtual std::string name() const = 0;

  /// Installs a continuous query; returns the engine-assigned id.
  virtual StatusOr<QueryId> RegisterQuery(Query query) = 0;
  /// Terminates a continuous query.
  virtual Status UnregisterQuery(QueryId id) = 0;
  /// Streams one epoch batch; returns the assigned document ids.
  virtual StatusOr<std::vector<DocId>> IngestBatch(
      std::vector<Document> batch) = 0;
  /// Streams one document through the per-event path.
  virtual StatusOr<DocId> Ingest(Document document) = 0;
  /// Advances the clock (time-based windows; no-op otherwise).
  virtual Status AdvanceTime(Timestamp now) = 0;
  /// Snapshot of the current top-k result of a query, best first.
  virtual StatusOr<std::vector<ResultEntry>> Result(QueryId id) const = 0;
  /// Installs the per-epoch result listener (core/notifier.h contract).
  virtual void SetResultListener(ResultListener listener) = 0;
  /// Number of valid documents in the engine's window.
  virtual std::size_t window_size() const = 0;
  /// Number of registered continuous queries.
  virtual std::size_t query_count() const = 0;
  /// Operation counters (aggregated across shards for the sharded
  /// engine).
  virtual ServerStats stats() const = 0;
  /// Zeroes every counter and gauge.
  virtual void ResetStats() = 0;

  // --- Telemetry (DESIGN.md §11) --------------------------------------

  /// Turns on epoch phase tracing on the wrapped engine (a single-lane
  /// trace for sequential servers, one lane per shard for the sharded
  /// engine). No-op in an ITA_OBS=OFF build. Default: engines without
  /// tracing ignore the call.
  virtual void EnableTracing(std::size_t capacity = 256) { (void)capacity; }

  /// The engine's epoch trace, or null when tracing was never enabled
  /// (or the build has ITA_OBS=OFF).
  virtual const obs::EpochTrace* trace() const { return nullptr; }

  /// Mutable view of the trace — lets a fixture Reset() the telemetry
  /// after prefill so measured distributions cover only steady state.
  /// Null whenever trace() is.
  virtual obs::EpochTrace* mutable_trace() { return nullptr; }

  /// Turns on hot-term load tracking on the wrapped engine's ItaServer(s);
  /// ignored by non-ITA strategies and in ITA_OBS=OFF builds.
  virtual void EnableHotTermTracking(std::size_t capacity = 64) {
    (void)capacity;
  }

  /// The engine's hot-term sketch (folded across shards for the sharded
  /// engine); empty when tracking was never enabled.
  virtual obs::SpaceSavingSketch HotTerms() const {
    return obs::SpaceSavingSketch(1);
  }

  /// The wrapped sequential server, or null for the sharded engine —
  /// lets callers reach strategy-specific introspection hooks.
  virtual ContinuousSearchServer* sequential() { return nullptr; }
  /// The wrapped sharded engine, or null for sequential wrappers.
  virtual exec::ShardedServer* sharded() { return nullptr; }
  /// Const view of the wrapped sharded engine (metrics export reads its
  /// rebalance counters), or null for sequential wrappers.
  const exec::ShardedServer* sharded() const {
    return const_cast<SimEngine*>(this)->sharded();
  }

  /// The wrapped server as an ItaServer when it is one (enables the
  /// checker's threshold invariants), else null.
  const ItaServer* ita() const {
    return dynamic_cast<const ItaServer*>(
        const_cast<SimEngine*>(this)->sequential());
  }
};

/// Which sequential strategy a MakeSequentialEngine wrapper embeds.
enum class SequentialStrategy { kIta, kNaive, kOracle };

/// Wraps a freshly constructed sequential server of the given strategy.
std::unique_ptr<SimEngine> MakeSequentialEngine(
    SequentialStrategy strategy, const WindowSpec& window,
    const ItaTuning& ita_tuning = {}, const NaiveTuning& naive_tuning = {});

/// Wraps a freshly constructed sharded engine (per-shard ItaServers).
/// `threads` = 0 picks one worker per shard (capped at the hardware).
/// `rebalance` sets the engine's load-aware placement policy (the
/// ITA_REBALANCE environment override still applies on top).
std::unique_ptr<SimEngine> MakeShardedEngine(
    const WindowSpec& window, std::size_t shards, std::size_t threads = 0,
    const ItaTuning& tuning = {}, const exec::RebalanceOptions& rebalance = {});

/// How ApplyEpoch streams an epoch's batch into the engine.
enum class IngestMode {
  kBatch,     ///< one IngestBatch epoch (the production path)
  kPerEvent,  ///< one Ingest call per document (the paper's event loop)
};

/// Feeds one epoch into `engine` in application order — unregister,
/// register (asserting the engine assigns exactly the predicted
/// register_ids), ingest the batch, advance the clock — and returns the
/// assigned document ids. Any engine error or id-prediction mismatch
/// comes back as a non-OK status naming the epoch. This overload
/// consumes the epoch (the batch moves into the engine) — the choice
/// for a sole-owner caller like the bench fixture, whose timed region
/// must not pay a document deep copy.
StatusOr<std::vector<DocId>> ApplyEpoch(SimEngine& engine, SimEpoch&& epoch,
                                        IngestMode mode = IngestMode::kBatch);

/// ApplyEpoch for a shared epoch (the scenario runner feeds one epoch to
/// a whole fleet): the batch is copied, `epoch` is left intact.
StatusOr<std::vector<DocId>> ApplyEpoch(SimEngine& engine,
                                        const SimEpoch& epoch,
                                        IngestMode mode = IngestMode::kBatch);

}  // namespace ita::sim
