/// \file
/// The one place engine state becomes a metrics snapshot (DESIGN.md §11):
/// ExportEngineMetrics reads a SimEngine's counters, epoch trace, and
/// hot-term sketch and registers every series — canonical names, base
/// labels attached — into an obs::MetricsRegistry, which then renders
/// JSON or Prometheus text. The scenario runner's --metrics dump, the
/// sharded_monitor example, and the metrics tests all consume this
/// function, so the export schema exists exactly once.
///
/// Series produced (docs/metrics_schema.json mirrors the JSON shape):
///   * every ServerStats counter/gauge (obs/metrics.h ExportServerStats);
///   * with tracing: ita_epoch_wall_nanos (histogram),
///     ita_epoch_phase_nanos{shard=,phase=} and
///     ita_epoch_subspan_nanos{shard=,span=} (histograms; empty series
///     are skipped), ita_epochs_traced (counter), ita_shard_imbalance
///     and ita_shard_imbalance_max (gauges);
///   * with hot-term tracking: ita_hot_term_load{term=} (counters, one
///     per tracked term, value = the sketch's upper-bound count).

#pragma once

#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "sim/sim_engine.h"

namespace ita::sim {

/// Registers `engine`'s full telemetry snapshot into `registry` with
/// `base_labels` attached to every series; see the file comment for the
/// series list. Fails only on registry rejection (invalid or duplicate
/// series — e.g. exporting two engines into one registry with identical
/// labels).
Status ExportEngineMetrics(const SimEngine& engine,
                           std::vector<obs::Label> base_labels,
                           obs::MetricsRegistry* registry);

}  // namespace ita::sim
