/// \file
/// The kill/restore harness behind the persistence tier (DESIGN.md §13):
/// drives one engine ("subject") through a scenario's epoch stream under
/// the production durability protocol — periodic epoch-boundary
/// snapshots plus a write-ahead epoch log appended BEFORE each epoch is
/// applied — then simulates a crash at a configurable epoch/phase,
/// recovers a fresh engine from the latest snapshot + log-tail replay,
/// and resumes the stream. An uninterrupted twin consumes the identical
/// stream; equivalence is judged by
///   * byte-identical notification fingerprints (order-sensitive FNV-1a
///     over every delivered (epoch, query, result) triple, with
///     epoch-indexed dedup absorbing the at-least-once re-delivery that
///     log replay implies),
///   * per-query Result() equality at end of stream, and
///   * a forced oracle differential over subject and twin together.
///
/// The consumer-side dedup is the documented delivery contract: the log
/// carries no commit records, so replay re-delivers notifications for
/// epochs the consumer may have already seen; consumers key on the epoch
/// index (monotone per query) and drop duplicates.

#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/ita_server.h"
#include "exec/sharded_server.h"
#include "persist/checkpoint.h"
#include "sim/checker.h"
#include "sim/scenario.h"

namespace ita::sim {

/// Where inside the epoch-boundary protocol the simulated kill lands.
/// The four phases cover every distinct recovery shape: nothing durable
/// yet, a torn (partially written) log record, a logged-but-unapplied
/// epoch, and a fully applied epoch whose re-delivery the consumer must
/// dedup.
enum class CrashPhase {
  kBeforeLogAppend,  ///< epoch neither logged nor applied; re-fed after restore
  kTornLogAppend,    ///< crash mid-append: log ends in a torn record
  kAfterLogAppend,   ///< logged, not applied; recovery replays it from the log
  kAfterApply,       ///< applied and delivered; replay re-delivers, dedup'd
};

/// Stable display name ("before-log-append", ...).
const char* CrashPhaseName(CrashPhase phase);

/// Knobs for one kill/restore run.
struct CrashRestoreOptions {
  /// 0 = sequential ItaServer; >= 1 = sharded engine with this many shards.
  std::size_t shards = 0;
  /// Worker threads for the sharded engine (0 = one per shard).
  std::size_t threads = 0;
  /// Tuning shared by subject, twin and (per-shard) restored engines.
  ItaTuning tuning;
  /// Load-aware placement policy for the sharded engine.
  exec::RebalanceOptions rebalance;
  /// Snapshot cadence: checkpoint after every N applied epochs (the log
  /// is cleared at each snapshot). Must be >= 1.
  std::size_t snapshot_every_epochs = 8;
  /// Zero-based epoch index at whose boundary the kill hits. Must be
  /// < the stream's epoch count (Run returns InvalidArgument otherwise).
  std::uint64_t crash_epoch = 0;
  CrashPhase crash_phase = CrashPhase::kAfterApply;
  /// Bytes torn off the log tail for kTornLogAppend (clamped to the
  /// final record; must be >= 1 so the record is actually torn).
  std::size_t torn_cut_bytes = 3;
  /// Run the forced oracle differential over subject and twin at end of
  /// stream (an OracleServer consumes the whole stream alongside).
  bool check_oracle = true;
  /// Tolerances for the differential layer.
  CheckerOptions checker;
};

/// What one kill/restore run observed. All equivalence checks have
/// already passed when Run() returns OK; the fingerprints are surfaced
/// for logging and cross-run identity assertions.
struct CrashRestoreReport {
  std::uint64_t epochs = 0;  ///< epochs in the stream (twin applied all)
  std::uint64_t events = 0;  ///< document arrivals in the stream
  std::uint64_t stream_fingerprint = 0;        ///< canonical stream digest
  std::uint64_t notification_fingerprint = 0;  ///< subject == twin digest
  std::uint64_t live_queries = 0;              ///< live at end of stream
  /// Snapshot/restore/log counters for the subject's durability path.
  persist::PersistStats persist;
};

/// Runs one kill/restore cycle for `spec` under `options`; see the file
/// comment for the protocol. Any divergence (fingerprint mismatch,
/// result inequality, oracle differential, invariant violation) comes
/// back as a non-OK Status whose message ends with ReproLine(...).
class CrashRestoreRunner {
 public:
  CrashRestoreRunner(ScenarioSpec spec, CrashRestoreOptions options);

  StatusOr<CrashRestoreReport> Run();

  /// "--scenario=<name> --seed=<seed> --crash-epoch=<e> --phase=<p> ..."
  /// — everything needed to replay this exact run.
  static std::string ReproLine(const ScenarioSpec& spec,
                               const CrashRestoreOptions& options);

 private:
  ScenarioSpec spec_;
  CrashRestoreOptions options_;
};

}  // namespace ita::sim
