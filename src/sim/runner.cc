#include "sim/runner.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "sim/metrics_export.h"

namespace ita::sim {

ScenarioRunner::ScenarioRunner(ScenarioSpec spec, RunOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {}

std::string ScenarioRunner::ReproLine(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "--seed=" << spec.seed << " --events=" << spec.events
     << " (scenario '" << spec.name << "')";
  return os.str();
}

StatusOr<RunReport> ScenarioRunner::Run() {
  ITA_RETURN_NOT_OK(spec_.Validate());

  const auto fail = [this](const std::string& what) {
    return Status::Internal(what + "; reproduce with " + ReproLine(spec_));
  };

  // --- Assemble the fleet -------------------------------------------
  std::vector<std::unique_ptr<SimEngine>> engines;
  if (options_.include_sequential_ita) {
    engines.push_back(MakeSequentialEngine(SequentialStrategy::kIta,
                                           spec_.window, options_.tuning));
  }
  if (options_.include_naive) {
    engines.push_back(
        MakeSequentialEngine(SequentialStrategy::kNaive, spec_.window));
  }
  for (const std::size_t shards : options_.shard_counts) {
    engines.push_back(MakeShardedEngine(spec_.window, shards,
                                        options_.threads_per_sharded,
                                        options_.tuning, options_.rebalance));
  }
  if (engines.empty()) {
    return Status::InvalidArgument("scenario run needs at least one engine");
  }
  std::unique_ptr<SimEngine> oracle;
  if (options_.check_oracle) {
    oracle = MakeSequentialEngine(SequentialStrategy::kOracle, spec_.window);
  }
  if (options_.enable_tracing || !options_.metrics_path.empty()) {
    for (const auto& e : engines) {
      e->EnableTracing();
      e->EnableHotTermTracking();
    }
  }
  std::vector<SimEngine*> engine_ptrs;
  engine_ptrs.reserve(engines.size());
  for (const auto& e : engines) engine_ptrs.push_back(e.get());

  // Per-engine notification capture: the notifier contract (ascending
  // QueryId, once per query per epoch) and cross-engine equality are
  // validated every epoch.
  std::vector<std::vector<QueryId>> fired(engines.size());
  if (options_.verify_notifications) {
    for (std::size_t i = 0; i < engines.size(); ++i) {
      engines[i]->SetResultListener(
          [&fired, i](QueryId id, const std::vector<ResultEntry>&) {
            fired[i].push_back(id);
          });
    }
  }

  EventStreamGenerator generator(spec_);
  DifferentialChecker checker(options_.checker, oracle.get());
  StreamFingerprint fingerprint;

  // The live query population (id -> query); pointers into the map stay
  // stable across inserts/erases, which LiveQuery relies on.
  std::unordered_map<QueryId, Query> live;
  std::vector<QueryId> live_order;

  RunReport report;
  std::uint64_t last_epoch_index = 0;

  while (auto epoch = generator.NextEpoch()) {
    last_epoch_index = epoch->index;
    fingerprint.Absorb(*epoch);

    // Drive every engine; the first is the reference for assigned ids.
    std::vector<DocId> reference_ids;
    for (std::size_t i = 0; i < engines.size(); ++i) {
      auto ids = ApplyEpoch(*engines[i], *epoch);
      if (!ids.ok()) return fail(ids.status().ToString());
      if (i == 0) {
        reference_ids = *std::move(ids);
      } else if (*ids != reference_ids) {
        std::ostringstream os;
        os << "engine " << engines[i]->name()
           << " assigned different document ids than "
           << engines[0]->name() << " at epoch " << epoch->index;
        return fail(os.str());
      }
    }
    if (oracle != nullptr) {
      const auto ids = ApplyEpoch(*oracle, *epoch);
      if (!ids.ok()) return fail(ids.status().ToString());
    }

    // Track the live population.
    for (const QueryId id : epoch->unregister) {
      live.erase(id);
      live_order.erase(
          std::remove(live_order.begin(), live_order.end(), id),
          live_order.end());
    }
    for (std::size_t i = 0; i < epoch->register_queries.size(); ++i) {
      live.emplace(epoch->register_ids[i], epoch->register_queries[i]);
      live_order.push_back(epoch->register_ids[i]);
    }

    // Notification contract: within each flush the ids ascend strictly,
    // every notified id is live, and the full per-epoch sequences are
    // identical across engines. An epoch flushes once after its ingest
    // and once after its clock advance, so the captured sequence may be
    // the concatenation of up to that many ascending runs.
    if (options_.verify_notifications) {
      const std::size_t flush_points =
          (epoch->batch.empty() ? 0u : 1u) + (epoch->has_advance ? 1u : 0u);
      for (std::size_t i = 0; i < engines.size(); ++i) {
        std::size_t ascending_runs = fired[i].empty() ? 0 : 1;
        for (std::size_t j = 0; j < fired[i].size(); ++j) {
          if (j > 0 && fired[i][j] <= fired[i][j - 1]) ++ascending_runs;
          if (live.find(fired[i][j]) == live.end()) {
            std::ostringstream os;
            os << "engine " << engines[i]->name()
               << " notified dead query " << fired[i][j] << " at epoch "
               << epoch->index;
            return fail(os.str());
          }
        }
        if (ascending_runs > flush_points) {
          std::ostringstream os;
          os << "engine " << engines[i]->name()
             << " notified out of ascending QueryId order at epoch "
             << epoch->index << " (" << ascending_runs
             << " ascending runs, " << flush_points << " flushes)";
          return fail(os.str());
        }
        if (fired[i] != fired[0]) {
          std::ostringstream os;
          os << "engine " << engines[i]->name()
             << " notification stream diverges from "
             << engines[0]->name() << " at epoch " << epoch->index;
          return fail(os.str());
        }
      }
      report.notifications += fired[0].size();
      for (auto& f : fired) f.clear();
    }

    // Online checking at the configured cadence.
    std::vector<LiveQuery> live_view;
    live_view.reserve(live_order.size());
    for (const QueryId id : live_order) {
      live_view.push_back(LiveQuery{id, &live.at(id)});
    }
    const Status checked =
        checker.CheckEpoch(engine_ptrs, live_view, epoch->index);
    if (!checked.ok()) return fail(checked.ToString());

    report.epochs += 1;
    report.events += epoch->batch.size();
    if (options_.progress_every_epochs > 0 &&
        epoch->index % options_.progress_every_epochs == 0) {
      ITA_LOG(Info) << "scenario '" << spec_.name << "': epoch "
                    << epoch->index << ", " << generator.events_generated()
                    << "/" << spec_.events << " events, window "
                    << engines[0]->window_size() << ", live queries "
                    << live.size();
    }
  }

  // Final forced pass: every layer runs once more on the end state even
  // when the cadence skipped the last epoch.
  if (report.epochs > 0) {
    std::vector<LiveQuery> live_view;
    live_view.reserve(live_order.size());
    for (const QueryId id : live_order) {
      live_view.push_back(LiveQuery{id, &live.at(id)});
    }
    const Status checked = checker.CheckEpoch(engine_ptrs, live_view,
                                              last_epoch_index, /*force=*/true);
    if (!checked.ok()) return fail(checked.ToString());
  }

  report.fingerprint = fingerprint.digest();
  report.differential_checks = checker.differential_checks();
  report.invariant_checks = checker.invariant_checks();
  report.final_window_size = engines[0]->window_size();
  report.final_query_count = engines[0]->query_count();
  for (const auto& e : engines) {
    if (const exec::ShardedServer* sharded = e->sharded()) {
      report.queries_migrated += sharded->rebalance_stats().queries_migrated;
    }
  }

  if (!options_.metrics_path.empty()) {
    obs::MetricsRegistry registry;
    for (const auto& e : engines) {
      const Status exported = ExportEngineMetrics(
          *e, {obs::Label{"engine", e->name()}}, &registry);
      if (!exported.ok()) return fail(exported.ToString());
    }
    const auto write = [](const std::string& path,
                          const std::string& content) {
      std::ofstream out(path, std::ios::trunc);
      out << content;
      out.close();
      return out.good() ? Status::OK()
                        : Status::IoError("cannot write " + path);
    };
    ITA_RETURN_NOT_OK(write(options_.metrics_path, registry.ToJson()));
    std::string prom_path = options_.metrics_path;
    const std::string json_suffix = ".json";
    if (prom_path.size() > json_suffix.size() &&
        prom_path.compare(prom_path.size() - json_suffix.size(),
                          json_suffix.size(), json_suffix) == 0) {
      prom_path.resize(prom_path.size() - json_suffix.size());
    }
    prom_path += ".prom";
    const std::string exposition = registry.ToPrometheus();
    // The exposition we write must pass our own lint — the same check
    // CI's metrics-smoke job applies to the file.
    ITA_RETURN_NOT_OK(obs::LintPrometheus(exposition));
    ITA_RETURN_NOT_OK(write(prom_path, exposition));
  }
  return report;
}

}  // namespace ita::sim
