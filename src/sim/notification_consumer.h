/// \file
/// The sim harness's idempotent notification consumer — the downstream
/// model both durability runners (sim/crash_restore.h) and the
/// elasticity runner (sim/reshard_runner.h) hang off an engine's result
/// listener: an order-sensitive FNV-1a digest over every ACCEPTED
/// delivery, where a delivery (epoch, query, entries) is accepted only
/// when `epoch` is newer than the last accepted epoch for that query —
/// exactly how a real consumer keyed on epoch indices absorbs
/// at-least-once re-delivery (log replay after a crash; a reshard never
/// re-delivers, so there the dedup is pure pass-through). Two engines
/// produce equal digests iff they delivered the same results for the
/// same queries at the same epochs in the same order.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "core/result_set.h"
#include "persist/wire.h"

namespace ita::sim {

/// See the file comment. Single-threaded, like the listeners feeding it.
class NotificationConsumer {
 public:
  /// Stamps subsequent deliveries with stream epoch `index`; call before
  /// applying the epoch that fires them.
  void BeginEpoch(std::uint64_t index) { epoch_ = index; }

  /// Absorbs one listener firing for query `id`, unless this consumer
  /// already accepted a delivery for `id` at this or a later epoch
  /// (a replayed duplicate — dropped).
  void Deliver(QueryId id, const std::vector<ResultEntry>& entries) {
    // last_ stores epoch+1 so 0 means "never delivered".
    std::uint64_t& last = last_[id];
    if (last >= epoch_ + 1) return;  // replayed duplicate — drop
    last = epoch_ + 1;
    scratch_.clear();
    persist::WireWriter w(&scratch_);
    w.PutU64(epoch_);
    w.PutU32(id);
    w.PutU64(entries.size());
    for (const ResultEntry& entry : entries) {
      w.PutU64(entry.doc);
      w.PutDouble(entry.score);
    }
    hash_ = persist::Fnv1a(scratch_, hash_);
    ++deliveries_;
  }

  /// The order-sensitive digest over every accepted delivery.
  std::uint64_t digest() const { return hash_; }
  /// Number of accepted (non-duplicate) deliveries.
  std::uint64_t deliveries() const { return deliveries_; }

 private:
  std::uint64_t epoch_ = 0;
  std::uint64_t hash_ = persist::kFnvOffsetBasis;
  std::uint64_t deliveries_ = 0;
  std::unordered_map<QueryId, std::uint64_t> last_;
  std::string scratch_;
};

}  // namespace ita::sim
