#include "exec/sharded_server.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "persist/snapshot.h"

namespace ita::exec {

namespace {

std::size_t PickThreads(const ShardedServerOptions& options) {
  if (options.threads != 0) return options.threads;
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::max<std::size_t>(1, std::min(options.shards, hw));
}

// The ITA_REBALANCE environment override ("off"/"0", "on"/"1",
// "aggressive") applied on top of the configured options, then the
// aggressive-mode knob tightening: a low trigger, no hysteresis and a
// bigger move budget, so soak/CI runs exercise migration churn on every
// skewed stream regardless of where the mode came from.
RebalanceOptions ApplyRebalanceEnv(RebalanceOptions options) {
  const char* env = std::getenv("ITA_REBALANCE");
  if (env != nullptr && *env != '\0') {
    const std::string value(env);
    if (value == "off" || value == "0") {
      options.mode = RebalanceMode::kOff;
    } else if (value == "on" || value == "1") {
      options.mode = RebalanceMode::kOn;
    } else if (value == "aggressive") {
      options.mode = RebalanceMode::kAggressive;
    } else {
      ITA_LOG(Warning) << "unknown ITA_REBALANCE value '" << value
                       << "' (want off|on|aggressive); keeping configured mode";
    }
  }
  if (options.mode == RebalanceMode::kAggressive) {
    options.imbalance_trigger = std::min(options.imbalance_trigger, 1.05);
    options.hysteresis_epochs = 1;
    options.max_moves_per_epoch = std::max<std::size_t>(
        options.max_moves_per_epoch, 16);
  }
  return options;
}

}  // namespace

ShardedServer::ShardedServer(ShardedServerOptions options)
    // By-value tuning capture: the stored factory outlives this
    // constructor call (Reshard replays it), so it must not reference the
    // parameter.
    : ShardedServer(options, [tuning = options.tuning](
                                 const ServerOptions& server_options) {
        return std::make_unique<ItaServer>(server_options, tuning);
      }) {}

ShardedServer::ShardedServer(ShardedServerOptions options,
                             const ShardFactory& factory)
    : options_(options),
      rebalance_(ApplyRebalanceEnv(options.rebalance)),
      factory_(factory),
      arena_(std::make_unique<DocumentArena>()),
      scheduler_(PickThreads(options)) {
  ITA_CHECK(options_.shards >= 1) << "a sharded server needs at least one shard";
  ITA_CHECK_OK(options_.window.Validate());
  ITA_CHECK(factory_ != nullptr) << "a sharded server needs a shard factory";
  shards_.reserve(options_.shards);
  // Every shard reads the engine's arena; none of them owns a window.
  ServerOptions server_options;
  server_options.window = options_.window;
  server_options.shared_arena = arena_.get();
  for (std::size_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(factory_(server_options));
    ITA_CHECK(shards_.back() != nullptr) << "shard factory returned null";
  }
  shard_busy_micros_.assign(shards_.size(), 0);
  load_ema_.assign(shards_.size(), 0.0);
  load_snapshot_.assign(shards_.size(), 0);
}

void ShardedServer::SetResultListener(ResultListener listener) {
  notifier_.SetListener(std::move(listener));
  // Shards have no listener of their own; tracking lets the driver drain
  // their changed queries for the merged flush. It mirrors the listener's
  // lifetime so listener-less streams (benchmarks, or after removing the
  // listener) skip per-epoch mark bookkeeping, matching the sequential
  // server's no-listener fast path.
  for (const auto& shard : shards_) {
    shard->SetChangeTracking(notifier_.has_listener());
  }
}

StatusOr<QueryId> ShardedServer::RegisterQuery(Query query) {
  ITA_RETURN_NOT_OK(ValidateQuery(query));
  const QueryId id = next_query_id_++;
  // Fresh queries always start on their id-hash home shard; only the
  // rebalancer ever moves the placement entry afterwards.
  const std::size_t home = id % shards_.size();
  ITA_RETURN_NOT_OK(shards_[home]->RegisterQueryWithId(id, std::move(query)));
  placement_.emplace(id, static_cast<std::uint32_t>(home));
  return id;
}

Status ShardedServer::UnregisterQuery(QueryId id) {
  const Status status = shards_[ShardOf(id)]->UnregisterQuery(id);
  // Drop the placement entry on NotFound too, not just on success: a
  // stale entry for a dead id would otherwise pin the map forever and
  // mis-route the extraction passes of later rebalances and reshards.
  if (status.ok() || status.IsNotFound()) placement_.erase(id);
  return status;
}

StatusOr<std::vector<DocId>> ShardedServer::IngestBatch(
    std::vector<Document> batch) {
  if (batch.empty()) return std::vector<DocId>{};

#if ITA_OBS_ENABLED
  obs::Timer epoch_timer;
  if (trace_ != nullptr) trace_->BeginEpoch(epochs_processed_);
#endif

  // Plan once — shards share the arena and the stream history, so shard
  // 0's plan is every shard's plan, and a failed plan leaves everything
  // untouched (the phases below cannot fail).
  EpochPlan plan;
  {
    ITA_OBS_SPAN(driver_lane(), obs::Phase::kPlan);
    const auto planned = shards_[0]->PlanEpoch(batch);
    ITA_RETURN_NOT_OK(planned.status());
    plan = *planned;
  }
  const std::size_t total = batch.size();

  // The epoch protocol of core/server_strategy.h: every arena mutation
  // happens here, on the driver, strictly between phases; the phase
  // barrier orders it against all shard reads.

  // Pop the expiring documents (views stay readable until the reclaim at
  // the end of the epoch), then phase 1 on every shard.
  expired_scratch_.clear();
  arena_->PopExpiredInto(plan.expiring, expired_scratch_);
  RunPhase([this, &plan](std::size_t s) {
    shards_[s]->RunExpirePhase(plan, expired_scratch_);
  });

  // --- barrier: no shard starts arrivals before all finished expiring ---

  // Append the epoch ONCE; shards consume views, so document bytes are
  // constant in the shard count (DESIGN.md §8).
  const DocId first = arena_->AppendEpoch(std::move(batch), plan.first_survivor);
  arrived_scratch_.clear();
  arena_->TailViewsInto(plan.arriving, arrived_scratch_);
  RunPhase([this, &plan](std::size_t s) {
    shards_[s]->RunArrivePhase(plan, arrived_scratch_);
  });

  // --- barrier: every shard done reading before the arena reclaims ---

  arena_->ReclaimExpired();
  last_arrival_time_ = plan.epoch_end;
  ++epochs_processed_;
  {
    ITA_OBS_SPAN(driver_lane(), obs::Phase::kNotifyFlush);
    MergeAndFlush();
  }
  // Strictly after the flush: migration re-registrations can mark their
  // query changed on the receiving shard, and the next epoch's merge must
  // not surface those marks (the result is bit-identical across a move).
  MaybeRebalance();
#if ITA_OBS_ENABLED
  if (trace_ != nullptr) trace_->EndEpoch(epoch_timer.ElapsedNanos());
#endif

  std::vector<DocId> ids(total);
  for (std::size_t i = 0; i < total; ++i) ids[i] = first + i;
  return ids;
}

StatusOr<DocId> ShardedServer::Ingest(Document document) {
  std::vector<Document> batch;
  batch.push_back(std::move(document));
  ITA_ASSIGN_OR_RETURN(const std::vector<DocId> ids,
                       IngestBatch(std::move(batch)));
  ITA_DCHECK(ids.size() == 1);
  return ids[0];
}

Status ShardedServer::AdvanceTime(Timestamp now) {
  if (now < last_arrival_time_) {
    return Status::InvalidArgument("time may not move backwards");
  }
#if ITA_OBS_ENABLED
  obs::Timer epoch_timer;
  if (trace_ != nullptr) trace_->BeginEpoch(epochs_processed_);
#endif
  EpochPlan plan;
  {
    ITA_OBS_SPAN(driver_lane(), obs::Phase::kPlan);
    plan = arena_->PlanAdvance(options_.window, now);
  }
  expired_scratch_.clear();
  arena_->PopExpiredInto(plan.expiring, expired_scratch_);
  RunPhase([this, &plan](std::size_t s) {
    shards_[s]->RunExpirePhase(plan, expired_scratch_);
  });
  arena_->ReclaimExpired();
  last_arrival_time_ = now;
  ++epochs_processed_;
  {
    ITA_OBS_SPAN(driver_lane(), obs::Phase::kNotifyFlush);
    MergeAndFlush();
  }
  // Strictly after the flush: migration re-registrations can mark their
  // query changed on the receiving shard, and the next epoch's merge must
  // not surface those marks (the result is bit-identical across a move).
  MaybeRebalance();
#if ITA_OBS_ENABLED
  if (trace_ != nullptr) trace_->EndEpoch(epoch_timer.ElapsedNanos());
#endif
  return Status::OK();
}

StatusOr<std::vector<ResultEntry>> ShardedServer::Result(QueryId id) const {
  return shards_[ShardOf(id)]->Result(id);
}

ServerStats ShardedServer::stats() const {
  ServerStats aggregated;
  for (const auto& shard : shards_) aggregated.Add(shard->stats());
  // Stream plumbing (the counters of stats.h's first group — keep this
  // list in sync when adding one) is replicated on every shard: each
  // processes and indexes the whole stream, so summing would report it S
  // times; take one shard's view, after checking the replicas agree.
  // The catalog memory gauges stay summed on purpose: every shard's
  // catalog and query-state slab is private, real memory (stats.h).
  const ServerStats& replicated = shards_[0]->stats();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    ITA_DCHECK(shards_[s]->stats().documents_ingested ==
               replicated.documents_ingested);
    ITA_DCHECK(shards_[s]->stats().index_entries_inserted ==
               replicated.index_entries_inserted);
  }
  aggregated.documents_ingested = replicated.documents_ingested;
  aggregated.documents_expired = replicated.documents_expired;
  aggregated.batches_ingested = replicated.batches_ingested;
  aggregated.index_entries_inserted = replicated.index_entries_inserted;
  aggregated.index_entries_erased = replicated.index_entries_erased;
  // Window-arena gauges: shards run over the engine's shared arena and
  // report 0 (stats.h); the engine owns the single real window store.
  aggregated.arena_segments = arena_->segment_count();
  aggregated.document_bytes = arena_->document_bytes();
  return aggregated;
}

const ServerStats& ShardedServer::shard_stats(std::size_t shard) const {
  ITA_CHECK(shard < shards_.size());
  return shards_[shard]->stats();
}

std::size_t ShardedServer::shard_query_count(std::size_t shard) const {
  ITA_CHECK(shard < shards_.size());
  return shards_[shard]->query_count();
}

void ShardedServer::ResetStats() {
  for (const auto& shard : shards_) shard->ResetStats();
  shard_busy_micros_.assign(shards_.size(), 0);
  epochs_processed_ = 0;
  // The load signal differences cumulative shard counters, so zeroing the
  // shards must also zero the snapshots (and with them the smoothed
  // estimates — a measurement window starts from a clean slate).
  load_ema_.assign(shards_.size(), 0.0);
  load_snapshot_.assign(shards_.size(), 0);
  imbalance_streak_ = 0;
  rebalance_stats_ = RebalanceStats{};
  reshard_stats_ = ReshardStats{};
  last_epoch_migrations_ = 0;
}

std::uint64_t ShardedServer::shard_busy_micros(std::size_t shard) const {
  ITA_CHECK(shard < shard_busy_micros_.size());
  return shard_busy_micros_[shard];
}

void ShardedServer::EnableTracing(std::size_t capacity) {
#if ITA_OBS_ENABLED
  trace_capacity_ = std::max<std::size_t>(capacity, 1);
  trace_ = std::make_unique<obs::EpochTrace>(trace_capacity_, shards_.size());
  task_nanos_scratch_.assign(shards_.size(), 0);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->SetPhaseRecorder(trace_->shard_recorder(s));
  }
#else
  (void)capacity;  // spans compile to nothing; a trace would stay empty
#endif
}

void ShardedServer::EnableHotTermTracking(std::size_t capacity) {
  hot_term_capacity_ = std::max<std::size_t>(capacity, 1);
  for (const auto& shard : shards_) {
    if (auto* ita = dynamic_cast<ItaServer*>(shard.get())) {
      ita->EnableHotTermTracking(hot_term_capacity_);
    }
  }
}

obs::SpaceSavingSketch ShardedServer::AggregateHotTerms() const {
  // Capacity of the aggregate = the first tracked shard's capacity (all
  // shards were enabled with the same one).
  for (const auto& shard : shards_) {
    const auto* ita = dynamic_cast<const ItaServer*>(shard.get());
    if (ita == nullptr || ita->hot_terms() == nullptr) continue;
    obs::SpaceSavingSketch merged(ita->hot_terms()->capacity());
    for (const auto& other : shards_) {
      const auto* other_ita = dynamic_cast<const ItaServer*>(other.get());
      if (other_ita != nullptr && other_ita->hot_terms() != nullptr) {
        merged.MergeFrom(*other_ita->hot_terms());
      }
    }
    return merged;
  }
  return obs::SpaceSavingSketch(1);
}

std::string ShardedServer::name() const {
  return "sharded(" + shards_[0]->name() + "," +
         std::to_string(shards_.size()) + ")";
}

std::size_t ShardedServer::query_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->query_count();
  return total;
}

void ShardedServer::RunPhase(const std::function<void(std::size_t)>& fn) {
#if ITA_OBS_ENABLED
  if (trace_ != nullptr) {
    // Traced edition: per-task nanos land in the scratch (same single-
    // writer-per-shard discipline as shard_busy_micros_; the barrier
    // orders the writes against the driver's reads below), and the wall
    // measurement around the whole fan-out yields each shard's barrier
    // wait — the time its lane sat idle behind the slowest shard.
    obs::Timer phase_timer;
    scheduler_.RunPhase(shards_.size(), [this, &fn](std::size_t s) {
      obs::Timer task_timer;
      fn(s);
      const std::uint64_t nanos = task_timer.ElapsedNanos();
      task_nanos_scratch_[s] = nanos;
      shard_busy_micros_[s] += nanos / 1'000;
    });
    const std::uint64_t wall = phase_timer.ElapsedNanos();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const std::uint64_t busy = task_nanos_scratch_[s];
      trace_->RecordPhase(s, obs::Phase::kBarrierWait,
                          wall > busy ? wall - busy : 0);
    }
    return;
  }
#endif
  scheduler_.RunPhase(shards_.size(), [this, &fn](std::size_t s) {
    Stopwatch watch;
    fn(s);
    shard_busy_micros_[s] +=
        static_cast<std::uint64_t>(watch.ElapsedSeconds() * 1e6);
  });
}

std::uint64_t ShardedServer::ShardWorkCounter(const ServerStats& stats) {
  // The same per-term run counters the obs sketch and the tier policy
  // consume: probe hits, tree steps, list scans and score evaluations —
  // a deterministic proxy for the shard's epoch CPU time.
  return stats.queries_probed + stats.threshold_probe_steps +
         stats.list_entries_read + stats.scores_computed;
}

void ShardedServer::MaybeRebalance() {
  last_epoch_migrations_ = 0;
  const bool enabled =
      rebalance_.mode != RebalanceMode::kOff && shards_.size() >= 2;
  // Snapshots advance even while disabled so flipping the mode on later
  // starts from current counters instead of a construction-time delta.
  double total_ema = 0.0;
  std::size_t donor = 0;
  std::size_t receiver = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::uint64_t work = ShardWorkCounter(shards_[s]->stats());
    const std::uint64_t delta =
        work >= load_snapshot_[s] ? work - load_snapshot_[s] : 0;
    load_snapshot_[s] = work;
    load_ema_[s] = rebalance_.load_smoothing * static_cast<double>(delta) +
                   (1.0 - rebalance_.load_smoothing) * load_ema_[s];
    total_ema += load_ema_[s];
    if (load_ema_[s] > load_ema_[donor]) donor = s;
    if (load_ema_[s] < load_ema_[receiver]) receiver = s;
  }
  if (!enabled) return;
  const double mean_ema = total_ema / static_cast<double>(shards_.size());
  if (mean_ema <= 0.0 ||
      load_ema_[donor] < rebalance_.imbalance_trigger * mean_ema) {
    imbalance_streak_ = 0;
    return;
  }
  ++imbalance_streak_;
  if (imbalance_streak_ < rebalance_.hysteresis_epochs) return;
  if (donor == receiver) return;  // degenerate trigger (<= 1.0) on a flat fleet

  // Victims: the donor's hottest queries since the last drain; fall back
  // to its lowest ids when the strategy keeps no per-query accounting.
  top_work_scratch_.clear();
  shards_[donor]->DrainTopWorkQueries(rebalance_.max_moves_per_epoch,
                                      top_work_scratch_);
  if (top_work_scratch_.empty()) {
    for (const auto& [id, shard] : placement_) {
      if (shard == donor) top_work_scratch_.emplace_back(id, 0);
    }
    std::sort(top_work_scratch_.begin(), top_work_scratch_.end());
    if (top_work_scratch_.size() > rebalance_.max_moves_per_epoch) {
      top_work_scratch_.resize(rebalance_.max_moves_per_epoch);
    }
  }

  std::size_t moved = 0;
  for (const auto& victim : top_work_scratch_) {
    const QueryId id = victim.first;
    // The drained accounting may lag an unregister from earlier in the
    // epoch; a vanished victim just forfeits its slot in the budget.
    auto extracted = shards_[donor]->ExtractQuery(id);
    if (!extracted.ok()) continue;
    ITA_CHECK_OK(shards_[receiver]->RegisterQueryWithId(id, std::move(*extracted)));
    placement_[id] = static_cast<std::uint32_t>(receiver);
    ++moved;
  }
  if (moved > 0) {
    // Re-registration recomputes an identical top-k, so any change marks
    // it produced are spurious — drop them before the next epoch's merge.
    shards_[receiver]->TakeChangedQueries();
    last_epoch_migrations_ = moved;
    rebalance_stats_.queries_migrated += moved;
    ++rebalance_stats_.rebalance_events;
    imbalance_streak_ = 0;
  }
}

Status ShardedServer::RepartitionQueries(
    std::vector<std::pair<QueryId, Query>> queries) {
  for (auto& [id, query] : queries) {
    const std::size_t home = id % shards_.size();
    ITA_RETURN_NOT_OK(shards_[home]->RegisterQueryWithId(id, std::move(query)));
    placement_.emplace(id, static_cast<std::uint32_t>(home));
  }
  // Re-registration recomputes an identical top-k, so any change marks it
  // produced are spurious — drop them, then re-arm tracking to mirror the
  // engine's listener (a factory-fresh shard starts with tracking off).
  for (const auto& shard : shards_) {
    shard->TakeChangedQueries();
    shard->SetChangeTracking(notifier_.has_listener());
  }
  return Status::OK();
}

Status ShardedServer::Reshard(std::size_t new_shard_count) {
  if (new_shard_count == 0) {
    return Status::InvalidArgument("a sharded server needs at least one shard");
  }
  if (new_shard_count == shards_.size()) return Status::OK();
  obs::Timer pause;

  // Extract every live query from the outgoing fleet, ascending by id so
  // the remap is deterministic. Extraction empties the donors, so the old
  // shards retire holding no query state.
  std::vector<QueryId> ids;
  ids.reserve(placement_.size());
  for (const auto& [id, shard] : placement_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  std::vector<std::pair<QueryId, Query>> queries;
  queries.reserve(ids.size());
  for (const QueryId id : ids) {
    auto extracted = shards_[ShardOf(id)]->ExtractQuery(id);
    ITA_RETURN_NOT_OK(extracted.status());
    queries.emplace_back(id, std::move(*extracted));
  }
  const std::size_t remapped = queries.size();
  placement_.clear();

  // Retire the old fleet and build the new one over the SAME arena — the
  // window's document bytes never move. Every fresh shard adopts the
  // populated window (rebuilds its postings, takes the stream watermark)
  // before any query lands, so initial top-k searches and later expire
  // phases see a fully indexed window.
  shards_.clear();
  options_.shards = new_shard_count;
  ServerOptions server_options;
  server_options.window = options_.window;
  server_options.shared_arena = arena_.get();
  shards_.reserve(new_shard_count);
  for (std::size_t s = 0; s < new_shard_count; ++s) {
    shards_.push_back(factory_(server_options));
    ITA_CHECK(shards_.back() != nullptr) << "shard factory returned null";
    ITA_RETURN_NOT_OK(shards_.back()->AdoptWindow(last_arrival_time_));
  }

  // Driver-side per-shard state resizes to the new width. The load
  // estimates described shards that no longer exist — they restart from
  // zero (the snapshots re-seed below, AFTER re-registration, so the
  // remap's recompute work never counts as epoch load). The lifetime
  // migration counters survive: a reshard is not a stats reset.
  shard_busy_micros_.assign(shards_.size(), 0);
  load_ema_.assign(shards_.size(), 0.0);
  load_snapshot_.assign(shards_.size(), 0);
  imbalance_streak_ = 0;
  last_epoch_migrations_ = 0;

  ITA_RETURN_NOT_OK(RepartitionQueries(std::move(queries)));
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    load_snapshot_[s] = ShardWorkCounter(shards_[s]->stats());
  }
  if (hot_term_capacity_ != 0) EnableHotTermTracking(hot_term_capacity_);

  const std::uint64_t pause_nanos = pause.ElapsedNanos();
#if ITA_OBS_ENABLED
  if (trace_ != nullptr) {
    // Lane layout is fixed at trace construction — recreate at the new
    // width, then record the reshard as one synthetic row on lane 0: the
    // epoch counter and the wall histogram see the pause, which is the
    // honest accounting (the stream stalled for exactly that long).
    EnableTracing(trace_capacity_);
    trace_->BeginEpoch(epochs_processed_);
    trace_->RecordPhase(0, obs::Phase::kReshard, pause_nanos);
    trace_->EndEpoch(pause_nanos);
  }
#endif
  ++reshard_stats_.reshards;
  reshard_stats_.queries_remapped += remapped;
  reshard_stats_.last_pause_nanos = pause_nanos;
  reshard_stats_.total_pause_nanos += pause_nanos;
  return Status::OK();
}

Status ShardedServer::Checkpoint(std::string* out) const {
  out->clear();
  persist::SnapshotWriter snapshot(out);

  std::string meta;
  persist::WireWriter w(&meta);
  w.PutU64(shards_.size());
  w.PutU8(static_cast<std::uint8_t>(options_.window.kind));
  w.PutU64(options_.window.count);
  w.PutI64(options_.window.duration);
  w.PutU32(next_query_id_);
  w.PutI64(last_arrival_time_);
  w.PutU64(epochs_processed_);
  // Rebalancer state, so a restored engine's future placement decisions
  // match the uninterrupted run's exactly.
  for (const double ema : load_ema_) w.PutDouble(ema);
  for (const std::uint64_t snap : load_snapshot_) w.PutU64(snap);
  w.PutU64(imbalance_streak_);
  w.PutU64(rebalance_stats_.queries_migrated);
  w.PutU64(rebalance_stats_.rebalance_events);
  snapshot.AddSection("sharded/meta", meta);

  std::string arena;
  arena_->SerializeTo(&arena);
  snapshot.AddSection("sharded/arena", arena);

  std::string placement;
  persist::WireWriter pw(&placement);
  std::vector<QueryId> ids;
  ids.reserve(placement_.size());
  for (const auto& [id, shard] : placement_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  pw.PutU64(ids.size());
  for (const QueryId id : ids) {
    pw.PutU32(id);
    pw.PutU32(placement_.at(id));
  }
  snapshot.AddSection("sharded/placement", placement);

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::string shard_bytes;
    persist::SnapshotWriter shard_snapshot(&shard_bytes);
    ITA_RETURN_NOT_OK(shards_[s]->Checkpoint(shard_snapshot));
    snapshot.AddSection("sharded/shard" + std::to_string(s), shard_bytes);
  }
  return Status::OK();
}

Status ShardedServer::Restore(std::string_view bytes) {
  if (query_count() != 0 || !arena_->empty() || epochs_processed_ != 0) {
    return Status::FailedPrecondition(
        "restore requires a freshly constructed engine");
  }
  ITA_ASSIGN_OR_RETURN(const persist::SnapshotReader snapshot,
                       persist::SnapshotReader::Open(bytes));

  ITA_ASSIGN_OR_RETURN(const std::string_view meta,
                       snapshot.Section("sharded/meta"));
  persist::WireReader r(meta);
  std::uint64_t snap_shards = 0;
  ITA_RETURN_NOT_OK(r.ReadU64(&snap_shards));
  if (snap_shards == 0) {
    return Status::IoError("snapshot names zero shards");
  }
  // A differing shard count is NOT an error: the cross-shape path below
  // remaps the snapshot's queries onto this engine's width.
  const bool cross_shape = snap_shards != shards_.size();
  std::uint8_t kind = 0;
  std::uint64_t count = 0;
  std::int64_t duration = 0;
  ITA_RETURN_NOT_OK(r.ReadU8(&kind));
  ITA_RETURN_NOT_OK(r.ReadU64(&count));
  ITA_RETURN_NOT_OK(r.ReadI64(&duration));
  if (kind != static_cast<std::uint8_t>(options_.window.kind) ||
      count != options_.window.count ||
      duration != options_.window.duration) {
    return Status::FailedPrecondition(
        "snapshot window spec does not match this engine's");
  }
  ITA_RETURN_NOT_OK(r.ReadU32(&next_query_id_));
  ITA_RETURN_NOT_OK(r.ReadI64(&last_arrival_time_));
  ITA_RETURN_NOT_OK(r.ReadU64(&epochs_processed_));
  // Rebalancer state, sized by the SNAPSHOT's width. Same-shape it
  // carries over verbatim (future placement decisions replay the
  // uninterrupted run's); cross-shape it is discarded — the estimates
  // measured a fleet of the old width — and this engine's state stays at
  // its freshly constructed zeros.
  std::vector<double> snap_ema(snap_shards, 0.0);
  std::vector<std::uint64_t> snap_load(snap_shards, 0);
  for (std::size_t s = 0; s < snap_shards; ++s) {
    ITA_RETURN_NOT_OK(r.ReadDouble(&snap_ema[s]));
  }
  for (std::size_t s = 0; s < snap_shards; ++s) {
    ITA_RETURN_NOT_OK(r.ReadU64(&snap_load[s]));
  }
  std::uint64_t streak = 0;
  RebalanceStats snap_rebalance;
  ITA_RETURN_NOT_OK(r.ReadU64(&streak));
  ITA_RETURN_NOT_OK(r.ReadU64(&snap_rebalance.queries_migrated));
  ITA_RETURN_NOT_OK(r.ReadU64(&snap_rebalance.rebalance_events));
  ITA_RETURN_NOT_OK(r.ExpectEnd());
  if (!cross_shape) {
    load_ema_ = std::move(snap_ema);
    load_snapshot_ = std::move(snap_load);
    imbalance_streak_ = static_cast<std::size_t>(streak);
    rebalance_stats_ = snap_rebalance;
  }

  // Arena strictly before the shards: shard restore (and cross-shape
  // window adoption) rebuilds inverted lists by reading the shared
  // window contents.
  ITA_ASSIGN_OR_RETURN(const std::string_view arena_bytes,
                       snapshot.Section("sharded/arena"));
  ITA_RETURN_NOT_OK(arena_->DeserializeFrom(arena_bytes));

  ITA_ASSIGN_OR_RETURN(const std::string_view placement,
                       snapshot.Section("sharded/placement"));
  persist::WireReader pr(placement);
  std::uint64_t n_placed = 0;
  ITA_RETURN_NOT_OK(pr.ReadCount(&n_placed, 8));
  // Cross-shape the persisted placement cannot be installed (it names
  // shards of the old width) — its id set instead cross-checks the shard
  // registries below, so a truncated or tampered nested section can
  // never silently drop or invent a query.
  std::unordered_set<QueryId> placed;
  for (std::uint64_t i = 0; i < n_placed; ++i) {
    std::uint32_t id = 0;
    std::uint32_t shard = 0;
    ITA_RETURN_NOT_OK(pr.ReadU32(&id));
    ITA_RETURN_NOT_OK(pr.ReadU32(&shard));
    if (shard >= snap_shards) {
      return Status::IoError("placement names shard " + std::to_string(shard));
    }
    if (cross_shape) {
      if (!placed.insert(id).second) {
        return Status::IoError("placement repeats query id " +
                               std::to_string(id));
      }
    } else if (!placement_.emplace(id, shard).second) {
      return Status::IoError("placement repeats query id " +
                             std::to_string(id));
    }
  }
  ITA_RETURN_NOT_OK(pr.ExpectEnd());

  if (!cross_shape) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      ITA_ASSIGN_OR_RETURN(
          const std::string_view shard_bytes,
          snapshot.Section("sharded/shard" + std::to_string(s)));
      ITA_ASSIGN_OR_RETURN(const persist::SnapshotReader shard_snapshot,
                           persist::SnapshotReader::Open(shard_bytes));
      ITA_RETURN_NOT_OK(shards_[s]->Restore(shard_snapshot));
    }
    return Status::OK();
  }

  // Cross-shape remap: this engine's (fresh) shards adopt the restored
  // window, then every persisted shard's query registry is read out of
  // its nested container and re-registered at the new width. Results are
  // recomputed exactly (placement independence); per-shard counters and
  // ITA-internal persisted state restart from scratch, like any freshly
  // placed query's.
  for (const auto& shard : shards_) {
    ITA_RETURN_NOT_OK(shard->AdoptWindow(last_arrival_time_));
  }
  std::vector<std::pair<QueryId, Query>> queries;
  queries.reserve(placed.size());
  for (std::size_t s = 0; s < snap_shards; ++s) {
    ITA_ASSIGN_OR_RETURN(
        const std::string_view shard_bytes,
        snapshot.Section("sharded/shard" + std::to_string(s)));
    ITA_ASSIGN_OR_RETURN(const persist::SnapshotReader shard_snapshot,
                         persist::SnapshotReader::Open(shard_bytes));
    ITA_ASSIGN_OR_RETURN(auto registry, ReadQueryRegistry(shard_snapshot));
    for (auto& [id, query] : registry) {
      // erase()==0 covers both corruptions at once: an id absent from the
      // placement map and an id repeated across two shard registries.
      if (placed.erase(id) == 0) {
        return Status::IoError("shard registry names query id " +
                               std::to_string(id) +
                               " outside the snapshot placement");
      }
      queries.emplace_back(id, std::move(query));
    }
  }
  if (!placed.empty()) {
    return Status::IoError(
        "placement names " + std::to_string(placed.size()) +
        " query id(s) missing from the shard registries");
  }
  std::sort(queries.begin(), queries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return RepartitionQueries(std::move(queries));
}

Status ShardedServer::ValidatePruningMetadata() const {
  for (const auto& shard : shards_) {
    if (const auto* ita = dynamic_cast<const ItaServer*>(shard.get())) {
      ITA_RETURN_NOT_OK(ita->ValidatePruningMetadata());
    }
  }
  return Status::OK();
}

void ShardedServer::MergeAndFlush() {
  for (const auto& shard : shards_) {
    notifier_.MarkAll(shard->TakeChangedQueries());
  }
  notifier_.Flush([this](QueryId id) {
    auto result = shards_[ShardOf(id)]->Result(id);
    ITA_CHECK(result.ok()) << "changed query " << id << " has no result";
    return std::move(*result);
  });
}

}  // namespace ita::exec
