#include "exec/sharded_server.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace ita::exec {

namespace {

std::size_t PickThreads(const ShardedServerOptions& options) {
  if (options.threads != 0) return options.threads;
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::max<std::size_t>(1, std::min(options.shards, hw));
}

}  // namespace

ShardedServer::ShardedServer(ShardedServerOptions options)
    : ShardedServer(options, [&options](const ServerOptions& server_options) {
        return std::make_unique<ItaServer>(server_options, options.tuning);
      }) {}

ShardedServer::ShardedServer(ShardedServerOptions options,
                             const ShardFactory& factory)
    : options_(options), scheduler_(PickThreads(options)) {
  ITA_CHECK(options_.shards >= 1) << "a sharded server needs at least one shard";
  ITA_CHECK_OK(options_.window.Validate());
  shards_.reserve(options_.shards);
  const ServerOptions server_options{options_.window};
  for (std::size_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(factory(server_options));
    ITA_CHECK(shards_.back() != nullptr) << "shard factory returned null";
  }
  shard_busy_micros_.assign(shards_.size(), 0);
}

void ShardedServer::SetResultListener(ResultListener listener) {
  notifier_.SetListener(std::move(listener));
  // Shards have no listener of their own; tracking lets the driver drain
  // their changed queries for the merged flush. It mirrors the listener's
  // lifetime so listener-less streams (benchmarks, or after removing the
  // listener) skip per-epoch mark bookkeeping, matching the sequential
  // server's no-listener fast path.
  for (const auto& shard : shards_) {
    shard->SetChangeTracking(notifier_.has_listener());
  }
}

StatusOr<QueryId> ShardedServer::RegisterQuery(Query query) {
  ITA_RETURN_NOT_OK(ValidateQuery(query));
  const QueryId id = next_query_id_++;
  ITA_RETURN_NOT_OK(
      shards_[ShardOf(id)]->RegisterQueryWithId(id, std::move(query)));
  return id;
}

Status ShardedServer::UnregisterQuery(QueryId id) {
  return shards_[ShardOf(id)]->UnregisterQuery(id);
}

StatusOr<std::vector<DocId>> ShardedServer::IngestBatch(
    std::vector<Document> batch) {
  if (batch.empty()) return std::vector<DocId>{};

  // Plan once — shards are identical (same window, same stream history),
  // so shard 0's plan is every shard's plan, and a failed plan leaves all
  // of them untouched (the phases below cannot fail).
  EpochPlan plan;
  {
    const auto planned = shards_[0]->PlanEpoch(batch);
    ITA_RETURN_NOT_OK(planned.status());
    plan = *planned;
  }

  // Phase 1: every expiration the epoch implies, on every shard.
  RunPhase([this, &plan](std::size_t s) { shards_[s]->RunExpirePhase(plan); });

  // --- barrier: no shard starts arrivals before all finished expiring ---

  // Phase 2: broadcast the arrivals. With several shards each copies the
  // batch into its private store (the copy itself runs on the shard's
  // worker, so copying parallelizes too — no shard may steal the caller's
  // buffer while its siblings still read it); a single shard just takes it.
  std::vector<std::vector<DocId>> ids(shards_.size());
  if (shards_.size() == 1) {
    RunPhase([this, &plan, &batch, &ids](std::size_t s) {
      ids[s] = shards_[s]->RunArrivePhase(plan, std::move(batch));
    });
  } else {
    RunPhase([this, &plan, &batch, &ids](std::size_t s) {
      ids[s] = shards_[s]->RunArrivePhase(plan, batch);
    });
  }

  // Every shard must have assigned the same id sequence.
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    ITA_DCHECK(ids[s] == ids[0]) << "shard " << s << " id sequence diverged";
  }

  last_arrival_time_ = plan.epoch_end;
  ++epochs_processed_;
  MergeAndFlush();
  return std::move(ids[0]);
}

StatusOr<DocId> ShardedServer::Ingest(Document document) {
  std::vector<Document> batch;
  batch.push_back(std::move(document));
  ITA_ASSIGN_OR_RETURN(const std::vector<DocId> ids,
                       IngestBatch(std::move(batch)));
  ITA_DCHECK(ids.size() == 1);
  return ids[0];
}

Status ShardedServer::AdvanceTime(Timestamp now) {
  if (now < last_arrival_time_) {
    return Status::InvalidArgument("time may not move backwards");
  }
  EpochPlan plan;
  plan.epoch_end = now;
  RunPhase([this, &plan](std::size_t s) { shards_[s]->RunExpirePhase(plan); });
  last_arrival_time_ = now;
  ++epochs_processed_;
  MergeAndFlush();
  return Status::OK();
}

StatusOr<std::vector<ResultEntry>> ShardedServer::Result(QueryId id) const {
  return shards_[ShardOf(id)]->Result(id);
}

ServerStats ShardedServer::stats() const {
  ServerStats aggregated;
  for (const auto& shard : shards_) aggregated.Add(shard->stats());
  // Stream plumbing (the counters of stats.h's first group — keep this
  // list in sync when adding one) is replicated on every shard: each
  // ingests and indexes the whole stream, so summing would report it S
  // times; take one shard's view, after checking the replicas agree.
  // The memory gauges stay summed on purpose: every shard's catalog and
  // query-state slab is private, real memory (stats.h).
  const ServerStats& replicated = shards_[0]->stats();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    ITA_DCHECK(shards_[s]->stats().documents_ingested ==
               replicated.documents_ingested);
    ITA_DCHECK(shards_[s]->stats().index_entries_inserted ==
               replicated.index_entries_inserted);
  }
  aggregated.documents_ingested = replicated.documents_ingested;
  aggregated.documents_expired = replicated.documents_expired;
  aggregated.batches_ingested = replicated.batches_ingested;
  aggregated.index_entries_inserted = replicated.index_entries_inserted;
  aggregated.index_entries_erased = replicated.index_entries_erased;
  return aggregated;
}

const ServerStats& ShardedServer::shard_stats(std::size_t shard) const {
  ITA_CHECK(shard < shards_.size());
  return shards_[shard]->stats();
}

std::size_t ShardedServer::shard_query_count(std::size_t shard) const {
  ITA_CHECK(shard < shards_.size());
  return shards_[shard]->query_count();
}

void ShardedServer::ResetStats() {
  for (const auto& shard : shards_) shard->ResetStats();
  shard_busy_micros_.assign(shards_.size(), 0);
  epochs_processed_ = 0;
}

std::uint64_t ShardedServer::shard_busy_micros(std::size_t shard) const {
  ITA_CHECK(shard < shard_busy_micros_.size());
  return shard_busy_micros_[shard];
}

std::string ShardedServer::name() const {
  return "sharded(" + shards_[0]->name() + "," +
         std::to_string(shards_.size()) + ")";
}

std::size_t ShardedServer::query_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->query_count();
  return total;
}

std::size_t ShardedServer::window_size() const {
  return shards_[0]->window_size();
}

void ShardedServer::RunPhase(const std::function<void(std::size_t)>& fn) {
  scheduler_.RunPhase(shards_.size(), [this, &fn](std::size_t s) {
    Stopwatch watch;
    fn(s);
    shard_busy_micros_[s] +=
        static_cast<std::uint64_t>(watch.ElapsedSeconds() * 1e6);
  });
}

void ShardedServer::MergeAndFlush() {
  for (const auto& shard : shards_) {
    notifier_.MarkAll(shard->TakeChangedQueries());
  }
  notifier_.Flush([this](QueryId id) {
    auto result = shards_[ShardOf(id)]->Result(id);
    ITA_CHECK(result.ok()) << "changed query " << id << " has no result";
    return std::move(*result);
  });
}

}  // namespace ita::exec
