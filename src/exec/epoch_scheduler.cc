#include "exec/epoch_scheduler.h"

#include <exception>
#include <future>
#include <vector>

namespace ita::exec {

void EpochScheduler::RunPhase(std::size_t tasks,
                              const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;

  std::vector<std::future<void>> pending;
  pending.reserve(tasks);
  for (std::size_t i = 0; i < tasks; ++i) {
    pending.push_back(pool_.Submit([&fn, i] { fn(i); }));
  }

  // Wait for every task before rethrowing: a phase either completes on all
  // shards or the caller knows it did not, but no task is left running.
  std::exception_ptr first_error;
  for (std::future<void>& future : pending) {
    try {
      future.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace ita::exec
