/// \file
/// The epoch scheduler: runs one task per shard per phase on a fixed
/// thread pool and blocks until every task finished — the barrier that
/// separates an epoch's expire phase from its arrive phase across shards
/// (DESIGN.md §6). Deliberately work-stealing-free: shard tasks are the
/// unit of parallelism, each touches exactly one shard's private state, so
/// the only scheduling decision that matters is "all of phase N before any
/// of phase N+1", and a barrier expresses it directly.

#pragma once

#include <cstddef>
#include <functional>

#include "common/thread_pool.h"

namespace ita::exec {

/// The phase-barrier executor of the sharded engine; see the file
/// comment. Thread-safe in the only way it is used: one driver thread
/// calls RunPhase at a time; the pool workers run the tasks.
class EpochScheduler {
 public:
  /// A scheduler backed by `threads` pool workers (at least 1). More
  /// threads than shards is wasteful but harmless; fewer serializes some
  /// shard tasks within each phase, never across phases.
  explicit EpochScheduler(std::size_t threads) : pool_(threads) {}

  /// Runs fn(0), ..., fn(tasks - 1) on the pool and waits for all of them
  /// to finish (the phase barrier). If tasks threw, the first exception
  /// (by task index) is rethrown here — after every task has completed,
  /// so shard state is never abandoned mid-phase.
  void RunPhase(std::size_t tasks, const std::function<void(std::size_t)>& fn);

  /// Number of pool workers backing the phases.
  std::size_t thread_count() const { return pool_.thread_count(); }

 private:
  ThreadPool pool_;
};

}  // namespace ita::exec
