// The sharded parallel execution engine (DESIGN.md §6): registered
// queries are hash-partitioned across S shards, each shard owning a
// private embedded server — its own inverted index, threshold trees,
// result sets and document store, no shared mutable state — and every
// ingest epoch is broadcast to all shards through the ServerStrategy
// phase seam, driven in parallel by an EpochScheduler with a barrier
// between the expire and arrive phases.
//
// Exactness (the paper's guarantee survives sharding): ITA maintains each
// query's structures — R(Q), the local thresholds θ_{Q,t}, τ(Q) —
// independently of every other query; the inverted index depends only on
// the document stream. A shard holding a subset of the queries over the
// full stream is therefore a complete sequential server run for exactly
// those queries, so per-shard results equal a sequential run query for
// query (tests/property/sharded_equivalence_property_test.cc asserts
// this for S ∈ {1, 2, 4, 7} against ITA and the brute-force oracle).
//
// Threading contract: the public API must be called from one thread at a
// time (like every server in this library); inside IngestBatch /
// AdvanceTime the engine fans each phase out to the scheduler's pool and
// the phase barrier orders all shard work against the caller. Listener
// callbacks fire on the calling thread, after the merge, at most once per
// query per epoch, in ascending QueryId order — deterministic regardless
// of how shard tasks interleaved.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"
#include "core/ita_server.h"
#include "core/notifier.h"
#include "core/query.h"
#include "core/result_set.h"
#include "core/server.h"
#include "core/server_strategy.h"
#include "exec/epoch_scheduler.h"
#include "pipeline/ingest_pipeline.h"

namespace ita::exec {

struct ShardedServerOptions {
  WindowSpec window = WindowSpec::CountBased(1000);
  /// Number of shards S (>= 1). Queries are partitioned by id across the
  /// shards; every shard sees the whole document stream.
  std::size_t shards = 4;
  /// Worker threads driving the shard phases; 0 picks min(shards,
  /// hardware_concurrency).
  std::size_t threads = 0;
  /// Tuning for the default per-shard ItaServer factory; ignored when a
  /// custom factory is supplied.
  ItaTuning tuning;
};

class ShardedServer {
 public:
  /// Builds one embedded per-shard server; invoked `shards` times at
  /// construction, all with the same window options.
  using ShardFactory =
      std::function<std::unique_ptr<ServerStrategy>(const ServerOptions&)>;

  /// Shards the paper's ItaServer (the default production configuration).
  explicit ShardedServer(ShardedServerOptions options);
  /// Shards whatever the factory builds — the engine is strategy-agnostic
  /// (the equivalence suite shards Naive and Oracle too).
  ShardedServer(ShardedServerOptions options, const ShardFactory& factory);

  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  /// Installs a continuous query on the shard its id hashes to; the result
  /// is immediately computed over the current window contents.
  StatusOr<QueryId> RegisterQuery(Query query);

  /// Terminates a continuous query.
  Status UnregisterQuery(QueryId id);

  /// Streams a batch of documents as one epoch, broadcast to every shard:
  /// expire phase on all shards, barrier, arrive phase on all shards,
  /// barrier, deterministic notification merge. Semantically exact and
  /// epoch-equivalent to ContinuousSearchServer::IngestBatch of the same
  /// documents (same ids, same results, same notification cadence).
  StatusOr<std::vector<DocId>> IngestBatch(std::vector<Document> batch);

  /// The analyzed-epoch handoff from pipeline/: documents were analyzed
  /// once upstream; the engine broadcasts the weighted vectors to shards.
  StatusOr<std::vector<DocId>> IngestBatch(AnalyzedBatch batch) {
    return IngestBatch(std::move(batch.documents));
  }

  /// Streams one document (an epoch of one).
  StatusOr<DocId> Ingest(Document document);

  /// For time-based windows: advances the clock, expiring on all shards
  /// (one barriered expire phase). No-op for count-based windows.
  Status AdvanceTime(Timestamp now);

  /// Snapshot of the current top-k result of a query, best first, served
  /// by the owning shard.
  StatusOr<std::vector<ResultEntry>> Result(QueryId id) const;

  /// Registers a listener fired after each epoch, once per query whose
  /// top-k changed, in ascending QueryId order, on the calling thread.
  /// Like the sequential server, changes are only recorded while a
  /// listener is installed: installing one mid-stream starts notifications
  /// from the next epoch.
  void SetResultListener(ResultListener listener);

  /// Aggregated operation counters: per-query work summed across shards;
  /// stream plumbing (documents ingested/expired, epochs, index entries)
  /// reported once — every shard ingests and indexes the whole stream, so
  /// those counters are replicated, not partitioned. Memory gauges
  /// (catalog slab, postings, threshold entries, query-state slots) sum:
  /// each shard's per-term catalog is private, real memory under the
  /// broadcast-document design, so the sum is the engine's footprint.
  /// Per-shard counters stay available via shard_stats().
  ServerStats stats() const;
  const ServerStats& shard_stats(std::size_t shard) const;
  std::size_t shard_query_count(std::size_t shard) const;
  void ResetStats();

  /// Wall-clock busy time shard `shard`'s phase tasks have accumulated
  /// since construction or ResetStats(). The maximum across shards is the
  /// epoch critical path — what an epoch costs once every shard has its
  /// own core — and is the hardware-independent scaling metric recorded
  /// by bench_sharded.
  std::uint64_t shard_busy_micros(std::size_t shard) const;
  std::uint64_t epochs_processed() const { return epochs_processed_; }

  std::string name() const;
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t thread_count() const { return scheduler_.thread_count(); }
  std::size_t query_count() const;
  std::size_t window_size() const;
  Timestamp last_arrival_time() const { return last_arrival_time_; }
  const ShardedServerOptions& options() const { return options_; }

  /// The shard a query id is partitioned to.
  std::size_t ShardOf(QueryId id) const { return id % shards_.size(); }

 private:
  /// Runs fn(shard) on every shard through the scheduler (one barrier),
  /// accumulating each task's wall time into shard_busy_micros_.
  void RunPhase(const std::function<void(std::size_t)>& fn);

  /// Drains every shard's changed queries into the notifier and fires the
  /// listener — the same flush implementation the sequential server uses.
  void MergeAndFlush();

  ShardedServerOptions options_;
  std::vector<std::unique_ptr<ServerStrategy>> shards_;
  EpochScheduler scheduler_;
  ResultNotifier notifier_;
  QueryId next_query_id_ = 1;
  Timestamp last_arrival_time_ = 0;
  std::uint64_t epochs_processed_ = 0;
  /// Indexed by shard; written only by the worker running that shard's
  /// phase task (the barrier orders writes against reads).
  std::vector<std::uint64_t> shard_busy_micros_;
};

}  // namespace ita::exec
