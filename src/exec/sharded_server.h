/// \file
/// The sharded parallel execution engine (DESIGN.md §6, §8, §12):
/// registered queries start on the shard their id hashes to and may
/// thereafter be migrated between shards by the load-aware rebalancer
/// (RebalanceOptions) at epoch barriers, each shard owning a
/// private embedded server — its own inverted index, threshold trees and
/// result sets, no shared mutable state — while the sliding window's
/// documents live ONCE in an engine-owned stream::DocumentArena that every
/// shard reads through DocumentViews. Every ingest epoch is broadcast to
/// all shards through the ServerStrategy phase seam, driven in parallel by
/// an EpochScheduler with a barrier between the expire and arrive phases;
/// the engine alone mutates the arena, strictly between phases.
///
/// Exactness (the paper's guarantee survives sharding): ITA maintains each
/// query's structures — R(Q), the local thresholds θ_{Q,t}, τ(Q) —
/// independently of every other query; the inverted index depends only on
/// the document stream. A shard holding a subset of the queries over the
/// full stream is therefore a complete sequential server run for exactly
/// those queries, so per-shard results equal a sequential run query for
/// query (tests/property/sharded_equivalence_property_test.cc asserts
/// this for S ∈ {1, 2, 4, 7} against ITA and the brute-force oracle).
/// The same placement independence is what makes the shard count itself
/// elastic: Reshard(S′) rebuilds the partition over a new fleet between
/// epochs, and Restore accepts a snapshot taken at a different width —
/// both re-register every query and recompute its exact top-k, so the
/// stream continues bit-identically to an engine that ran at S′ all
/// along (DESIGN.md §14).
///
/// Threading contract: the public API must be called from one thread at a
/// time (like every server in this library); inside IngestBatch /
/// AdvanceTime the engine fans each phase out to the scheduler's pool and
/// the phase barrier orders all shard work — and all shard reads of the
/// shared arena — against the caller's arena mutations. Listener
/// callbacks fire on the calling thread, after the merge, at most once per
/// query per epoch, in ascending QueryId order — deterministic regardless
/// of how shard tasks interleaved.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"
#include "core/ita_server.h"
#include "core/notifier.h"
#include "core/query.h"
#include "core/result_set.h"
#include "core/server.h"
#include "core/server_strategy.h"
#include "exec/epoch_scheduler.h"
#include "obs/epoch_trace.h"
#include "obs/top_k_sketch.h"
#include "pipeline/ingest_pipeline.h"
#include "stream/document_arena.h"

/// The parallel execution layer: epoch scheduling and the sharded engine.
namespace ita::exec {

/// How aggressively the engine migrates queries between shards.
enum class RebalanceMode {
  kOff,         ///< static id-hash placement, never migrates
  kOn,          ///< bounded migrations behind hysteresis (the default)
  kAggressive,  ///< low trigger, no hysteresis, larger move budget
};

/// Load-aware placement policy (DESIGN.md §12): at each epoch barrier the
/// driver folds every shard's per-epoch work counters into a smoothed
/// load estimate and, when the hottest shard exceeds the mean by the
/// trigger factor for `hysteresis_epochs` consecutive epochs, migrates up
/// to `max_moves_per_epoch` of its most expensive queries to the coolest
/// shard. Migration = ExtractQuery + RegisterQueryWithId, which recomputes
/// the exact top-k over the current window, so placement never changes a
/// reported result or a notification (see ServerStrategy::ExtractQuery).
struct RebalanceOptions {
  /// Policy switch; the environment variable ITA_REBALANCE ("off", "on",
  /// "aggressive") overrides it at engine construction.
  RebalanceMode mode = RebalanceMode::kOn;
  /// Migration budget per epoch — bounds the barrier-time cost of a
  /// rebalance step (each move recomputes one query's top-k).
  std::size_t max_moves_per_epoch = 4;
  /// Rebalance when max shard load >= trigger * mean shard load.
  double imbalance_trigger = 1.20;
  /// Consecutive over-trigger epochs required before the first move —
  /// keeps one-epoch spikes from thrashing placement.
  std::size_t hysteresis_epochs = 3;
  /// EMA coefficient for the per-shard load estimate: weight of the
  /// newest epoch's work delta (0 < smoothing <= 1).
  double load_smoothing = 0.5;
};

/// Construction options for the sharded engine.
struct ShardedServerOptions {
  /// The sliding-window specification, shared by every shard.
  WindowSpec window = WindowSpec::CountBased(1000);
  /// Number of shards S (>= 1). Queries are partitioned by id across the
  /// shards; every shard sees the whole document stream.
  std::size_t shards = 4;
  /// Worker threads driving the shard phases; 0 picks min(shards,
  /// hardware_concurrency).
  std::size_t threads = 0;
  /// Tuning for the default per-shard ItaServer factory; ignored when a
  /// custom factory is supplied.
  ItaTuning tuning;
  /// Load-aware placement policy; see RebalanceOptions.
  RebalanceOptions rebalance;
};

/// S embedded servers behind one epoch driver and one shared window
/// arena; see the file comment for the partitioning and threading
/// contracts.
class ShardedServer {
 public:
  /// Builds one embedded per-shard server; invoked `shards` times at
  /// construction, all with the same window options and the engine's
  /// shared arena.
  using ShardFactory =
      std::function<std::unique_ptr<ServerStrategy>(const ServerOptions&)>;

  /// Shards the paper's ItaServer (the default production configuration).
  explicit ShardedServer(ShardedServerOptions options);
  /// Shards whatever the factory builds — the engine is strategy-agnostic
  /// (the equivalence suite shards Naive and Oracle too).
  ShardedServer(ShardedServerOptions options, const ShardFactory& factory);

  ShardedServer(const ShardedServer&) = delete;             ///< non-copyable
  ShardedServer& operator=(const ShardedServer&) = delete;  ///< non-copyable

  /// Installs a continuous query on the shard its id hashes to; the result
  /// is immediately computed over the current window contents.
  StatusOr<QueryId> RegisterQuery(Query query);

  /// Terminates a continuous query. The placement entry is dropped
  /// whether the owning shard removed the query or never had it
  /// (NotFound) — a dead id must never linger in the placement map.
  Status UnregisterQuery(QueryId id);

  /// Live resharding S→S′ at the epoch barrier (DESIGN.md §14): retires
  /// the current shard engines and rebuilds the partition over
  /// `new_shard_count` fresh ones — the shared window arena is untouched
  /// (document bytes never move). Every live query is extracted, then
  /// re-registered on its new id-hash home, which recomputes its exact
  /// top-k over the current window; by the same placement-independence
  /// argument as rebalancer migration, results and future notifications
  /// are bit-identical to an engine constructed at S′ (no notification
  /// fires from the remap itself). Rebalancer load state (EMAs, streak)
  /// restarts from zero — it measured shards that no longer exist — while
  /// the lifetime migration counters survive. Tracing and hot-term
  /// tracking are re-enabled at the new width; per-shard counters and
  /// busy-time tallies restart at zero. The worker pool keeps its
  /// construction-time size. Call only between epochs (the public API's
  /// single-thread contract makes mid-phase calls impossible).
  /// InvalidArgument for a zero count; no-op when the count is unchanged.
  Status Reshard(std::size_t new_shard_count);

  /// Streams a batch of documents as one epoch, broadcast to every shard:
  /// pop the expiring documents from the shared arena, expire phase on
  /// all shards, barrier, append the batch to the arena ONCE, arrive
  /// phase on all shards (views only — no per-shard copy), barrier,
  /// reclaim, deterministic notification merge. Semantically exact and
  /// epoch-equivalent to ContinuousSearchServer::IngestBatch of the same
  /// documents (same ids, same results, same notification cadence).
  StatusOr<std::vector<DocId>> IngestBatch(std::vector<Document> batch);

  /// The analyzed-epoch handoff from pipeline/: documents were analyzed
  /// once upstream; the engine stores them once and shards read views.
  StatusOr<std::vector<DocId>> IngestBatch(AnalyzedBatch batch) {
    return IngestBatch(std::move(batch.documents));
  }

  /// Streams one document (an epoch of one).
  StatusOr<DocId> Ingest(Document document);

  /// For time-based windows: advances the clock, expiring on all shards
  /// (one barriered expire phase). No-op for count-based windows.
  Status AdvanceTime(Timestamp now);

  /// Snapshot of the current top-k result of a query, best first, served
  /// by the owning shard.
  StatusOr<std::vector<ResultEntry>> Result(QueryId id) const;

  /// Registers a listener fired after each epoch, once per query whose
  /// top-k changed, in ascending QueryId order, on the calling thread.
  /// Like the sequential server, changes are only recorded while a
  /// listener is installed: installing one mid-stream starts notifications
  /// from the next epoch.
  void SetResultListener(ResultListener listener);

  /// Aggregated operation counters: per-query work summed across shards;
  /// stream plumbing (documents ingested/expired, epochs, index entries)
  /// reported once — every shard processes and indexes the whole stream,
  /// so those counters are replicated, not partitioned. Catalog memory
  /// gauges (slab, postings, threshold entries, query-state slots) sum:
  /// each shard's per-term catalog is private, real memory. The window-
  /// arena gauges (arena_segments, document_bytes) come from the engine's
  /// single shared arena — they are what makes document memory constant
  /// in S. Per-shard counters stay available via shard_stats().
  ServerStats stats() const;
  /// One shard's private counters (catalog gauges are that shard's own).
  const ServerStats& shard_stats(std::size_t shard) const;
  /// Number of queries partitioned onto `shard`.
  std::size_t shard_query_count(std::size_t shard) const;
  /// Zeroes every shard's counters and the engine's busy-time tallies.
  void ResetStats();

  /// Wall-clock busy time shard `shard`'s phase tasks have accumulated
  /// since construction or ResetStats(). The maximum across shards is the
  /// epoch critical path — what an epoch costs once every shard has its
  /// own core — and is the hardware-independent scaling metric recorded
  /// by bench_sharded.
  std::uint64_t shard_busy_micros(std::size_t shard) const;

  /// Turns on epoch phase tracing: creates an owned S-lane obs::EpochTrace
  /// keeping the last `capacity` epochs raw and wires every shard's span
  /// instrumentation at its private lane. Each subsequent epoch records
  /// the driver's plan and notify-flush spans (lane 0), every shard's
  /// expire/arrive spans and strategy sub-spans (its own lane, written by
  /// whichever worker runs the shard's phase task — the phase barrier
  /// orders those writes against the driver's epoch-end drain), and a
  /// per-shard barrier-wait span (phase wall minus the shard's task time,
  /// computed by the driver). No-op in an ITA_OBS=OFF build.
  void EnableTracing(std::size_t capacity = 256);

  /// The owned trace, null until EnableTracing() (and always null in an
  /// ITA_OBS=OFF build).
  const obs::EpochTrace* trace() const { return trace_.get(); }
  /// Mutable owned trace (for Reset between measurement windows).
  obs::EpochTrace* mutable_trace() { return trace_.get(); }

  /// Turns on hot-term load tracking on every shard whose strategy is an
  /// ItaServer (one space-saving sketch of `capacity` entries per shard;
  /// non-ITA strategies are skipped). No-op in an ITA_OBS=OFF build.
  void EnableHotTermTracking(std::size_t capacity = 64);

  /// The shards' hot-term sketches folded into one (sound upper bounds;
  /// merged error bounds are looser than a single sketch's). Empty when
  /// tracking was never enabled.
  obs::SpaceSavingSketch AggregateHotTerms() const;
  /// Ingest/advance epochs driven since construction or ResetStats().
  std::uint64_t epochs_processed() const { return epochs_processed_; }

  /// Lifetime counters of the load-aware placement layer.
  struct RebalanceStats {
    /// Queries moved between shards since construction or ResetStats().
    std::uint64_t queries_migrated = 0;
    /// Epochs in which at least one query moved.
    std::uint64_t rebalance_events = 0;
  };
  /// The placement layer's counters (zeroed by ResetStats()).
  const RebalanceStats& rebalance_stats() const { return rebalance_stats_; }
  /// Queries migrated at the barrier of the most recent epoch — the
  /// per-epoch churn number sharded_monitor prints beside the imbalance
  /// gauge.
  std::size_t last_epoch_migrations() const { return last_epoch_migrations_; }
  /// The rebalance policy in effect (options after any ITA_REBALANCE
  /// environment override).
  const RebalanceOptions& rebalance_options() const { return rebalance_; }
  /// The smoothed per-shard load estimates the rebalancer differences —
  /// exposed so tests can pin the restore contract (same-shape restore
  /// carries them over exactly; resharding and cross-shape restore zero
  /// them).
  const std::vector<double>& load_ema() const { return load_ema_; }
  /// Number of entries in the placement map. Equals the live query count
  /// at every epoch barrier — unregistration never leaves a stale entry
  /// behind (the churn regression test pins this).
  std::size_t placement_size() const { return placement_.size(); }

  /// Lifetime counters of the live-resharding path.
  struct ReshardStats {
    /// Completed Reshard() calls that changed the shard count.
    std::uint64_t reshards = 0;
    /// Queries re-registered across all reshards (each remap recomputes
    /// one exact top-k, the dominant pause cost).
    std::uint64_t queries_remapped = 0;
    /// Pause of the most recent reshard, nanoseconds of wall time the
    /// stream was stalled at the barrier.
    std::uint64_t last_pause_nanos = 0;
    /// Sum of every reshard's pause.
    std::uint64_t total_pause_nanos = 0;
  };
  /// The resharding counters (zeroed by ResetStats()).
  const ReshardStats& reshard_stats() const { return reshard_stats_; }

  /// Writes the engine's complete state as one snapshot container
  /// (persist/snapshot.h) into `out`: engine metadata + rebalancer state
  /// ("sharded/meta"), the shared window arena ("sharded/arena"), the
  /// live placement map ("sharded/placement" — so rebalanced layouts
  /// restore exactly), and each shard's own nested snapshot container
  /// ("sharded/shard<i>"). Call only between epochs — the epoch barrier
  /// is the consistency point (DESIGN.md §13).
  Status Checkpoint(std::string* out) const;

  /// Rebuilds the engine from Checkpoint bytes. Requires a freshly
  /// constructed engine with the same window spec (FailedPrecondition
  /// otherwise); typed snapshot errors on corrupt input. The engine's
  /// shard count may DIFFER from the snapshot's: a same-shape restore
  /// reinstates every shard's state and the rebalancer's load estimates
  /// verbatim, while a cross-shape restore remaps — it restores the
  /// shared arena, reads each persisted shard's query registry, and
  /// re-registers every query on its id-hash home at the new width,
  /// recomputing exact top-k results (bit-identical to the snapshotted
  /// ones, by placement independence). Cross-shape, the rebalancer load
  /// state and per-shard counters restart at zero — they described a
  /// fleet of the old width. Wall-clock tallies (shard_busy_micros)
  /// restart at zero either way.
  Status Restore(std::string_view bytes);

  /// Runs every ITA shard's pruning-metadata audit (block-max caches,
  /// threshold-tree mirrors, storage-tier tags) — the sim invariant
  /// checker's white-box hook, valid across tier and placement
  /// migrations. Non-ITA shards are skipped.
  Status ValidatePruningMetadata() const;

  /// Engine name, e.g. "sharded(ita,4)".
  std::string name() const;
  /// Number of shards S.
  std::size_t shard_count() const { return shards_.size(); }
  /// Scheduler worker threads.
  std::size_t thread_count() const { return scheduler_.thread_count(); }
  /// Total registered queries across all shards.
  std::size_t query_count() const;
  /// Number of valid documents in the shared window arena.
  std::size_t window_size() const { return arena_->size(); }
  /// Read-only view of the shared window arena — inspection hook for
  /// tools and tests.
  const DocumentArena& documents() const { return *arena_; }
  /// Arrival time of the newest ingested document (or AdvanceTime target).
  Timestamp last_arrival_time() const { return last_arrival_time_; }
  /// The construction options (`shards` tracks the current width after a
  /// Reshard).
  const ShardedServerOptions& options() const { return options_; }

  /// The shard a query id is placed on: registration homes every query at
  /// id % S; afterwards the id stays wherever the rebalancer last moved
  /// it. Unknown ids resolve to the hash home (whose shard reports
  /// NotFound, preserving the static-partitioning error surface).
  std::size_t ShardOf(QueryId id) const {
    const auto it = placement_.find(id);
    return it != placement_.end() ? static_cast<std::size_t>(it->second)
                                  : id % shards_.size();
  }

 private:
  /// Runs fn(shard) on every shard through the scheduler (one barrier),
  /// accumulating each task's wall time into shard_busy_micros_. With
  /// tracing on, additionally records each shard's barrier-wait span
  /// (phase wall minus the shard's own task time) after the barrier.
  void RunPhase(const std::function<void(std::size_t)>& fn);

  /// Lane 0's recorder while tracing (the driver lane), else null — the
  /// target of the driver's plan / notify-flush spans.
  obs::PhaseRecorder* driver_lane() {
    return trace_ != nullptr ? trace_->shard_recorder(0) : nullptr;
  }

  /// Drains every shard's changed queries into the notifier and fires the
  /// listener — the same flush implementation the sequential server uses.
  void MergeAndFlush();

  /// The per-epoch rebalance step, run at the epoch barrier strictly
  /// after MergeAndFlush (so migration-time re-registrations can never
  /// leak a spurious notification): folds each shard's work delta into
  /// load_ema_, checks trigger and hysteresis, then moves up to the
  /// budgeted number of the donor's hottest queries to the coolest shard.
  void MaybeRebalance();

  /// One shard's cumulative probe/scan/score work — the load signal
  /// MaybeRebalance differences against load_snapshot_.
  static std::uint64_t ShardWorkCounter(const ServerStats& stats);

  /// Re-registers `queries` (ascending by id) on the current fleet's
  /// id-hash homes, rebuilding the placement map — the shared tail of
  /// Reshard and cross-shape Restore. The fleet's shards must already
  /// have adopted the window; spurious change marks from the
  /// re-registrations are drained and change tracking is re-armed to
  /// mirror the listener before returning.
  Status RepartitionQueries(std::vector<std::pair<QueryId, Query>> queries);

  ShardedServerOptions options_;
  /// Rebalance policy in effect: options_.rebalance after the
  /// ITA_REBALANCE environment override.
  RebalanceOptions rebalance_;
  /// The per-shard engine factory, kept so Reshard can build the new
  /// fleet; captures by value only (it outlives the construction call).
  ShardFactory factory_;
  /// The single window store every shard reads (DESIGN.md §8). Declared
  /// before shards_ so it outlives them; mutated only by the engine,
  /// strictly between phases.
  std::unique_ptr<DocumentArena> arena_;
  std::vector<std::unique_ptr<ServerStrategy>> shards_;
  EpochScheduler scheduler_;
  ResultNotifier notifier_;
  QueryId next_query_id_ = 1;
  Timestamp last_arrival_time_ = 0;
  std::uint64_t epochs_processed_ = 0;
  /// Indexed by shard; written only by the worker running that shard's
  /// phase task (the barrier orders writes against reads).
  std::vector<std::uint64_t> shard_busy_micros_;
  /// Per-phase task nanos scratch, same write discipline as
  /// shard_busy_micros_; read by the driver after the barrier to compute
  /// barrier-wait spans. Sized only while tracing.
  std::vector<std::uint64_t> task_nanos_scratch_;
  /// The epoch trace, null until EnableTracing().
  std::unique_ptr<obs::EpochTrace> trace_;
  /// EnableTracing's capacity, kept so Reshard can recreate the trace
  /// with the new lane count; 0 = tracing never enabled.
  std::size_t trace_capacity_ = 0;
  /// EnableHotTermTracking's capacity, kept so Reshard can re-arm the
  /// new fleet's sketches; 0 = tracking never enabled.
  std::size_t hot_term_capacity_ = 0;
  /// Per-epoch view scratch, written by the engine before each phase and
  /// read concurrently (read-only) by every shard during it.
  std::vector<DocumentView> expired_scratch_;
  std::vector<DocumentView> arrived_scratch_;

  // --- Load-aware placement state (driver-only, between phases) -------
  /// Where each live query id currently lives. Registration inserts the
  /// id-hash home shard; only MaybeRebalance ever changes an entry.
  std::unordered_map<QueryId, std::uint32_t> placement_;
  /// Smoothed per-shard load estimate (EMA of per-epoch work deltas).
  std::vector<double> load_ema_;
  /// Previous epoch's cumulative ShardWorkCounter per shard.
  std::vector<std::uint64_t> load_snapshot_;
  /// Consecutive epochs the imbalance trigger has fired.
  std::size_t imbalance_streak_ = 0;
  RebalanceStats rebalance_stats_;
  ReshardStats reshard_stats_;
  std::size_t last_epoch_migrations_ = 0;
  /// Victim-selection scratch for DrainTopWorkQueries.
  std::vector<std::pair<QueryId, std::uint64_t>> top_work_scratch_;
};

}  // namespace ita::exec
