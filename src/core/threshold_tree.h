// The per-inverted-list "threshold tree" of Section III: a book-keeping
// structure holding one <theta_{Q,t}, Q> entry for every registered query
// Q that contains term t. Its job is the probe "find all queries whose
// local threshold is <= w" executed on every document arrival/expiration
// that touches the term.
//
// Entries ascend by theta, so the probe is a front scan that stops at the
// first entry above w — cost proportional to the number of *affected*
// queries, which is exactly the economy ITA is built on.

#pragma once

#include <cstddef>

#include "common/logging.h"
#include "common/types.h"
#include "container/skip_list.h"

namespace ita {

class ThresholdTree {
 public:
  struct Entry {
    double theta = 0.0;
    QueryId query = kInvalidQueryId;
  };
  struct Order {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.theta != b.theta) return a.theta < b.theta;
      return a.query < b.query;
    }
  };

  /// Registers query `query` with local threshold `theta`. A query appears
  /// at most once per tree.
  void Insert(double theta, QueryId query) {
    const bool inserted = entries_.Insert(Entry{theta, query}).second;
    ITA_DCHECK(inserted);
    (void)inserted;
  }

  /// Removes the entry (theta, query); the exact current theta must be
  /// supplied. Returns false if absent.
  bool Erase(double theta, QueryId query) {
    return entries_.Erase(Entry{theta, query});
  }

  /// Moves a query's threshold from `old_theta` to `new_theta`.
  void Update(double old_theta, double new_theta, QueryId query) {
    const bool erased = Erase(old_theta, query);
    ITA_DCHECK(erased);
    (void)erased;
    Insert(new_theta, query);
  }

  /// Invokes `fn(QueryId)` for every query with theta <= w, and returns
  /// the number of entries visited (== number of invocations).
  template <typename Fn>
  std::size_t ProbeLessEqual(double w, Fn&& fn) const {
    std::size_t steps = 0;
    for (auto it = entries_.begin(); it != entries_.end() && it->theta <= w; ++it) {
      ++steps;
      fn(it->query);
    }
    return steps;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  SkipList<Entry, Order> entries_;
};

}  // namespace ita
