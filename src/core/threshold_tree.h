/// \file
/// The per-inverted-list "threshold tree" of Section III: a book-keeping
/// structure holding one <theta_{Q,t}, Q> entry for every registered query
/// Q that contains term t. Its job is the probe "find all queries whose
/// local threshold is <= w" executed on every document arrival/expiration
/// that touches the term.
///
/// Storage is a contiguous array of packed {theta, query} pairs sorted by
/// ascending theta, mirroring the impact-array layout of InvertedList
/// (DESIGN.md §7): the probe is a linear front scan that stops at the
/// first entry above w — cost proportional to the number of *affected*
/// queries (the economy ITA is built on) over cache-resident 16-byte
/// entries, instead of the seed's pointer-chasing skip-list walk. A
/// single Update is one binary search plus one std::rotate (a memmove);
/// the epoch path batches a whole tree's threshold moves into ApplyMoves,
/// one erase-compaction plus one merge pass regardless of the move count.
///
/// The payload is an opaque 32-bit handle: the tests register QueryIds
/// directly, while ItaServer stores SlotMap slots so a probe hit resolves
/// to query state with one slab access (no hash lookup).
///
/// Invariants that keep the flat layout exact: entries are unique per
/// query (a query holds ONE local threshold per term), ordered by
/// (theta, query), and every mutation receives the exact current theta —
/// so lookups are binary searches, never scans.

#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace ita {

/// One term's threshold tree as a packed sorted array; see the file
/// comment for the layout and exactness argument. Not thread-safe: owned
/// and mutated by a single server (one per shard under sharding).
class FlatThresholdTree {
 public:
  /// One registered local threshold: query `query` monitors this term
  /// from weight `theta` up.
  struct Entry {
    double theta = 0.0;                ///< the local threshold theta_{Q,t}
    QueryId query = kInvalidQueryId;   ///< opaque 32-bit payload (id or slot)
  };
  /// Total order of the packed array: ascending (theta, query).
  struct Order {
    /// True when `a` sorts before `b`.
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.theta != b.theta) return a.theta < b.theta;
      return a.query < b.query;
    }
  };
  /// One relocation of a query's local threshold, applied in bulk by
  /// ApplyMoves. `old_theta` must be the exact current tree entry.
  struct ThetaMove {
    double old_theta = 0.0;            ///< exact current tree position
    double new_theta = 0.0;            ///< target position
    QueryId query = kInvalidQueryId;   ///< the moving entry's payload
  };

  /// Registers query `query` with local threshold `theta`. Returns false
  /// (and inserts nothing) if the exact entry is already present; callers
  /// treat a duplicate as a logic error.
  bool Insert(double theta, QueryId query) {
    const Entry entry{theta, query};
    const auto it =
        std::lower_bound(entries_.begin(), entries_.end(), entry, Order{});
    if (it != entries_.end() && it->theta == theta && it->query == query) {
      return false;
    }
    entries_.insert(it, entry);
    return true;
  }

  /// Removes the entry (theta, query); the exact current theta must be
  /// supplied. Returns false if absent.
  bool Erase(double theta, QueryId query) {
    const Entry entry{theta, query};
    const auto it =
        std::lower_bound(entries_.begin(), entries_.end(), entry, Order{});
    if (it == entries_.end() || it->theta != theta || it->query != query) {
      return false;
    }
    entries_.erase(it);
    return true;
  }

  /// Moves a query's threshold from `old_theta` to `new_theta`: one
  /// binary search for each endpoint and one rotate of the span between
  /// them (a single memmove), instead of the erase + insert pair.
  void Update(double old_theta, double new_theta, QueryId query) {
    if (old_theta == new_theta) return;
    const auto old_it = std::lower_bound(entries_.begin(), entries_.end(),
                                         Entry{old_theta, query}, Order{});
    ITA_DCHECK(old_it != entries_.end() && old_it->theta == old_theta &&
               old_it->query == query)
        << "threshold tree entry missing for update";
    if (new_theta > old_theta) {
      const auto new_it = std::lower_bound(old_it + 1, entries_.end(),
                                           Entry{new_theta, query}, Order{});
      std::rotate(old_it, old_it + 1, new_it);
      *(new_it - 1) = Entry{new_theta, query};
    } else {
      const auto new_it = std::lower_bound(entries_.begin(), old_it,
                                           Entry{new_theta, query}, Order{});
      std::rotate(new_it, old_it, old_it + 1);
      *new_it = Entry{new_theta, query};
    }
  }

  /// Applies a whole epoch's threshold moves for this tree as one
  /// erase-compaction pass plus one merge pass — O(n + m log m) for m
  /// moves over n entries, where m sequential Updates cost O(m n). The
  /// moves' old entries must all be present, at most one move per query;
  /// `moves` is reordered in place (scratch). Returns moves applied.
  std::size_t ApplyMoves(std::vector<ThetaMove>& moves);

  /// Invokes `fn(QueryId)` for every query with theta <= w, and returns
  /// the number of entries visited (== number of invocations). Entries
  /// ascend by theta, so this is a front scan stopping at the first entry
  /// above w.
  template <typename Fn>
  std::size_t ProbeLessEqual(double w, Fn&& fn) const {
    const Entry* it = entries_.data();
    const Entry* const last = it + entries_.size();
    for (; it != last && it->theta <= w; ++it) fn(it->query);
    return static_cast<std::size_t>(it - entries_.data());
  }

  /// Number of registered (theta, query) entries.
  std::size_t size() const { return entries_.size(); }
  /// True when no query monitors this term.
  bool empty() const { return entries_.empty(); }

  /// Read-only view of the packed entries, ascending — test/debug hook.
  const Entry* begin() const { return entries_.data(); }
  /// Past-the-end pointer of begin().
  const Entry* end() const { return entries_.data() + entries_.size(); }

 private:
  std::vector<Entry> entries_;  ///< ascending (theta, query)
};

/// The flat layout is the one threshold tree of the system; the historic
/// name stays for the call sites and the paper's vocabulary.
using ThresholdTree = FlatThresholdTree;

}  // namespace ita
