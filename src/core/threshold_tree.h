/// \file
/// The per-inverted-list "threshold tree" of Section III: a book-keeping
/// structure holding one <theta_{Q,t}, Q> entry for every registered query
/// Q that contains term t. Its job is the probe "find all queries whose
/// local threshold is <= w" executed on every document arrival/expiration
/// that touches the term.
///
/// Storage is structure-of-arrays (DESIGN.md §10): a dense ascending
/// `theta` array and a parallel `query` array, both sorted by
/// (theta, query). The probe is a front scan that stops at the first
/// theta above w — cost proportional to the number of *affected* queries
/// (the economy ITA is built on) — and with the thetas contiguous it is
/// a pure lane scan: simd::ProbePrefixLessEqual counts the affected
/// prefix 2–4 doubles per instruction, then the payload loop touches
/// only the hit prefix of the (4-byte) query array. A single Update is
/// one binary search plus one rotate per array (two memmoves over 12
/// bytes/entry where the old AoS layout moved 16); the epoch path
/// batches a whole tree's moves into ApplyMoves, one erase-compaction
/// plus one merge pass regardless of the move count.
///
/// The tree also caches its minimum theta (+infinity when empty): the
/// epoch collector consults MinTheta() to skip probing terms whose
/// maximum arriving impact cannot reach any registered threshold — the
/// WAND-style gate of DESIGN.md §10. A skipped probe is exactly one
/// that would have visited zero entries, so results and work counters
/// are bit-identical with and without the gate.
///
/// The payload is an opaque 32-bit handle: the tests register QueryIds
/// directly, while ItaServer stores SlotMap slots so a probe hit resolves
/// to query state with one slab access (no hash lookup).
///
/// Invariants that keep the flat layout exact: entries are unique per
/// query (a query holds ONE local threshold per term), ordered by
/// (theta, query), and every mutation receives the exact current theta —
/// so lookups are binary searches (the shared FindExact), never scans.

#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "common/types.h"
#include "simd/simd.h"

namespace ita {

/// One term's threshold tree as parallel packed sorted arrays; see the
/// file comment for the layout and exactness argument. Not thread-safe:
/// owned and mutated by a single server (one per shard under sharding).
class FlatThresholdTree {
 public:
  /// One registered local threshold: query `query` monitors this term
  /// from weight `theta` up. The tree stores the two fields in separate
  /// arrays; Entry is the materialized view (At()) and the key type the
  /// order/move helpers speak.
  struct Entry {
    double theta = 0.0;                ///< the local threshold theta_{Q,t}
    QueryId query = kInvalidQueryId;   ///< opaque 32-bit payload (id or slot)
  };
  /// Total order of the packed arrays: ascending (theta, query).
  struct Order {
    /// True when `a` sorts before `b`.
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.theta != b.theta) return a.theta < b.theta;
      return a.query < b.query;
    }
  };
  /// One relocation of a query's local threshold, applied in bulk by
  /// ApplyMoves. `old_theta` must be the exact current tree entry.
  struct ThetaMove {
    double old_theta = 0.0;            ///< exact current tree position
    double new_theta = 0.0;            ///< target position
    QueryId query = kInvalidQueryId;   ///< the moving entry's payload
  };

  /// Registers query `query` with local threshold `theta`. Returns false
  /// (and inserts nothing) if the exact entry is already present; callers
  /// treat a duplicate as a logic error.
  bool Insert(double theta, QueryId query) {
    const std::size_t pos = LowerBound(0, size(), theta, query);
    if (pos != size() && thetas_[pos] == theta && queries_[pos] == query) {
      return false;
    }
    thetas_.insert(thetas_.begin() + static_cast<std::ptrdiff_t>(pos), theta);
    queries_.insert(queries_.begin() + static_cast<std::ptrdiff_t>(pos),
                    query);
    RefreshMinTheta();
    return true;
  }

  /// Removes the entry (theta, query); the exact current theta must be
  /// supplied. Returns false if absent.
  bool Erase(double theta, QueryId query) {
    const std::size_t pos = FindExact(theta, query);
    if (pos == npos) return false;
    thetas_.erase(thetas_.begin() + static_cast<std::ptrdiff_t>(pos));
    queries_.erase(queries_.begin() + static_cast<std::ptrdiff_t>(pos));
    RefreshMinTheta();
    return true;
  }

  /// Moves a query's threshold from `old_theta` to `new_theta`: one
  /// binary search for each endpoint and one rotate of the span between
  /// them (a memmove per array), instead of the erase + insert pair.
  void Update(double old_theta, double new_theta, QueryId query) {
    if (old_theta == new_theta) return;
    const std::size_t old_pos = FindExact(old_theta, query);
    ITA_DCHECK(old_pos != npos)
        << "threshold tree entry missing for update";
    if (old_pos == npos) return;
    if (new_theta > old_theta) {
      const std::size_t new_pos =
          LowerBound(old_pos + 1, size(), new_theta, query);
      Rotate(old_pos, old_pos + 1, new_pos);
      thetas_[new_pos - 1] = new_theta;
      queries_[new_pos - 1] = query;
    } else {
      const std::size_t new_pos = LowerBound(0, old_pos, new_theta, query);
      Rotate(new_pos, old_pos, old_pos + 1);
      thetas_[new_pos] = new_theta;
      queries_[new_pos] = query;
    }
    RefreshMinTheta();
  }

  /// Applies a whole epoch's threshold moves for this tree as one
  /// erase-compaction pass plus one merge pass — O(n + m log m) for m
  /// moves over n entries, where m sequential Updates cost O(m n). The
  /// moves' old entries must all be present, at most one move per query;
  /// `moves` is reordered in place (scratch). Returns moves applied.
  std::size_t ApplyMoves(std::vector<ThetaMove>& moves);

  /// Invokes `fn(QueryId)` for every query with theta <= w, and returns
  /// the number of entries visited (== number of invocations). Thetas
  /// ascend, so the affected count is one kernel front scan over the
  /// theta lanes; only the hit prefix of the query array is then read.
  /// Hot-tier trees (SetWideProbe) swap the linear kernel scan for a
  /// galloping upper-bound on the same ascending array — O(log prefix)
  /// where flood terms make the affected prefix most of the tree. Both
  /// modes count the exact same prefix (first theta > w), so results
  /// and the probe-steps work counter are bit-identical across tiers.
  template <typename Fn>
  std::size_t ProbeLessEqual(double w, Fn&& fn) const {
    const std::size_t n =
        wide_probe_ ? GallopPrefixLessEqual(w)
                    : simd::ProbePrefixLessEqual(thetas_.data(),
                                                 thetas_.size(), w);
    for (std::size_t i = 0; i < n; ++i) fn(queries_[i]);
    return n;
  }

  /// Selects the wide (hot-tier) probe layout; see ProbeLessEqual. Tier
  /// migrations flip this only at epoch boundaries, never mid-probe.
  void SetWideProbe(bool wide) { wide_probe_ = wide; }
  /// True when the tree probes via the wide (galloping) path.
  bool wide_probe() const { return wide_probe_; }

  /// The smallest registered theta, +infinity when the tree is empty —
  /// the epoch collector's probe gate: an impact below MinTheta() cannot
  /// affect any query of this term. Cached, O(1).
  double MinTheta() const { return min_theta_; }

  /// Number of registered (theta, query) entries.
  std::size_t size() const { return thetas_.size(); }
  /// True when no query monitors this term.
  bool empty() const { return thetas_.empty(); }

  /// The entry at ascending rank `i` — test/debug hook.
  Entry At(std::size_t i) const {
    ITA_DCHECK(i < size());
    return Entry{thetas_[i], queries_[i]};
  }

 private:
  /// Not-found sentinel of FindExact.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// First index in [from, to) whose (theta, query) sorts >= the key
  /// under Order — the parallel-array std::lower_bound.
  std::size_t LowerBound(std::size_t from, std::size_t to, double theta,
                         QueryId query) const {
    std::size_t lo = from;
    std::size_t hi = to;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const bool less = thetas_[mid] != theta ? thetas_[mid] < theta
                                              : queries_[mid] < query;
      if (less) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Index of the exact entry (theta, query) in [from, size()), or npos
  /// when absent — the one shared exact-lookup behind Erase, Update and
  /// ApplyMoves (every mutation receives the exact current theta, so
  /// this is a binary search, never a scan).
  std::size_t FindExact(double theta, QueryId query,
                        std::size_t from = 0) const {
    const std::size_t pos = LowerBound(from, size(), theta, query);
    if (pos == size() || thetas_[pos] != theta || queries_[pos] != query) {
      return npos;
    }
    return pos;
  }

  /// std::rotate([first, middle, last)) applied to both parallel arrays.
  void Rotate(std::size_t first, std::size_t middle, std::size_t last) {
    std::rotate(thetas_.begin() + static_cast<std::ptrdiff_t>(first),
                thetas_.begin() + static_cast<std::ptrdiff_t>(middle),
                thetas_.begin() + static_cast<std::ptrdiff_t>(last));
    std::rotate(queries_.begin() + static_cast<std::ptrdiff_t>(first),
                queries_.begin() + static_cast<std::ptrdiff_t>(middle),
                queries_.begin() + static_cast<std::ptrdiff_t>(last));
  }

  /// Re-derives the cached probe gate after a mutation (O(1)).
  void RefreshMinTheta() {
    min_theta_ = thetas_.empty() ? std::numeric_limits<double>::infinity()
                                 : thetas_.front();
  }

  /// The wide-probe affected count: exponential front gallop then one
  /// binary search — the first index with theta > w, identical to the
  /// linear kernel scan's stop index.
  std::size_t GallopPrefixLessEqual(double w) const {
    const std::size_t n = thetas_.size();
    if (n == 0 || thetas_[0] > w) return 0;
    std::size_t hi = 1;
    while (hi < n && thetas_[hi] <= w) hi <<= 1;
    const std::size_t lo = hi >> 1;  // thetas_[lo] <= w by the gallop
    hi = std::min(hi, n);
    return static_cast<std::size_t>(
        std::upper_bound(thetas_.begin() + static_cast<std::ptrdiff_t>(lo),
                         thetas_.begin() + static_cast<std::ptrdiff_t>(hi),
                         w) -
        thetas_.begin());
  }

  std::vector<double> thetas_;    ///< ascending theta lanes (the probe scan)
  std::vector<QueryId> queries_;  ///< payloads, parallel to thetas_
  /// Cached thetas_.front() (+inf when empty); see MinTheta().
  double min_theta_ = std::numeric_limits<double>::infinity();
  /// Hot-tier probe layout flag; see SetWideProbe().
  bool wide_probe_ = false;
};

/// The flat layout is the one threshold tree of the system; the historic
/// name stays for the call sites and the paper's vocabulary.
using ThresholdTree = FlatThresholdTree;

}  // namespace ita
