// The paper's comparator: the Naive monitoring scheme of Section II,
// strengthened (as in Section IV) with the materialized top-k_max view
// maintenance of Yi et al., "Efficient Maintenance of Materialized Top-k
// Views", ICDE 2003 ([6]).
//
// Cost model, kept deliberately faithful to the paper:
//   * every arriving document is scored against *every* registered query
//     (no term-indexed shortcut — that shortcut is ITA's contribution);
//   * every expiring document is membership-checked against every query's
//     view;
//   * when a deletion shrinks a view below k, the view is recomputed to
//     top-k_max by scanning all valid documents.
//
// The view invariant follows Yi et al.: the view holds the exact top-k'
// of the valid matching documents, k <= k' <= k_max, shrinking on
// deletions and refilling (k' = k_max) on underflow. A `complete` flag
// records when the view holds *all* matching documents (fewer matchers
// than k_max exist), in which case lower-scoring arrivals must be
// admitted too.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "core/result_set.h"
#include "core/server.h"

namespace ita {

struct NaiveTuning {
  /// k_max = max(k, ceil(kmax_factor * k)). Yi et al. derive the optimal
  /// value analytically from the update rates; 2k is the robust regime
  /// they report, and bench A4 sweeps the factor. 1.0 yields the plain
  /// Naive of Section II (view size exactly k).
  double kmax_factor = 2.0;
  /// Paper fidelity switch. The paper's Naive recomputes R "by scanning
  /// through D" whenever an update leaves fewer than k documents — even
  /// when the view provably already holds every matching document (a
  /// query with fewer than k matchers rescans on every matching expiry).
  /// Setting this skips those provably-futile rescans; it never changes
  /// answers, only cost. Default off to reproduce the paper's baseline.
  bool skip_complete_rescans = false;
};

class NaiveServer : public ContinuousSearchServer {
 public:
  explicit NaiveServer(ServerOptions options, NaiveTuning tuning = {})
      : ContinuousSearchServer(options), tuning_(tuning) {}

  std::string name() const override { return "naive"; }

  /// The k_max in effect for result size k.
  std::size_t KMaxFor(int k) const;

  /// The full materialized view (up to k_max entries, best first) — test
  /// and debugging hook; the public answer is Result(id).
  StatusOr<std::vector<ResultEntry>> View(QueryId id) const;

  /// Whether the view provably holds every valid matching document.
  StatusOr<bool> ViewComplete(QueryId id) const;

 protected:
  Status OnRegisterQuery(QueryId id, const Query& query) override;
  Status OnUnregisterQuery(QueryId id) override;
  void OnArrive(const Document& doc) override;
  void OnExpire(const Document& doc) override;
  std::vector<ResultEntry> CurrentResult(QueryId id) const override;

 private:
  struct QueryState {
    QueryId id = kInvalidQueryId;
    const Query* query = nullptr;
    std::size_t kmax = 0;
    ResultSet view;
    /// True when the view provably holds every valid matching document.
    bool complete = true;
  };

  /// Recomputes the view as the top-k_max of all valid documents — the
  /// expensive full rescan of D.
  void Refill(QueryState& state);

  NaiveTuning tuning_;
  std::unordered_map<QueryId, std::unique_ptr<QueryState>> states_;
};

}  // namespace ita
