/// \file
/// The paper's comparator: the Naive monitoring scheme of Section II,
/// strengthened (as in Section IV) with the materialized top-k_max view
/// maintenance of Yi et al., "Efficient Maintenance of Materialized Top-k
/// Views", ICDE 2003 ([6]).
///
/// Cost model, kept deliberately faithful to the paper:
///   * every arriving document is scored against *every* registered query
///     (no term-indexed shortcut — that shortcut is ITA's contribution);
///   * every expiring document is membership-checked against every query's
///     view;
///   * when a deletion shrinks a view below k, the view is recomputed to
///     top-k_max by scanning all valid documents.
///
/// The view invariant follows Yi et al.: the view holds the exact top-k'
/// of the valid matching documents, k <= k' <= k_max, shrinking on
/// deletions and refilling (k' = k_max) on underflow. A `complete` flag
/// records when the view holds *all* matching documents (fewer matchers
/// than k_max exist), in which case lower-scoring arrivals must be
/// admitted too.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "core/result_set.h"
#include "core/server.h"

namespace ita {

/// Tuning knobs for NaiveServer, used by the k_max ablation bench.
struct NaiveTuning {
  /// k_max = max(k, ceil(kmax_factor * k)). Yi et al. derive the optimal
  /// value analytically from the update rates; 2k is the robust regime
  /// they report, and bench A4 sweeps the factor. 1.0 yields the plain
  /// Naive of Section II (view size exactly k).
  double kmax_factor = 2.0;
  /// Paper fidelity switch. The paper's Naive recomputes R "by scanning
  /// through D" whenever an update leaves fewer than k documents — even
  /// when the view provably already holds every matching document (a
  /// query with fewer than k matchers rescans on every matching expiry).
  /// Setting this skips those provably-futile rescans; it never changes
  /// answers, only cost. Default off to reproduce the paper's baseline.
  bool skip_complete_rescans = false;
};

/// The paper's Naive comparator as a server strategy; see the file
/// comment for the cost model and the Yi et al. view invariant.
/// Single-threaded like every server in this library.
class NaiveServer : public ContinuousSearchServer {
 public:
  /// Builds a Naive server over `options` (window spec, optional shared
  /// arena) with the given tuning.
  explicit NaiveServer(ServerOptions options, NaiveTuning tuning = {})
      : ContinuousSearchServer(options), tuning_(tuning) {}

  /// ServerStrategy: the strategy name, "naive".
  std::string name() const override { return "naive"; }

  /// The k_max in effect for result size k.
  std::size_t KMaxFor(int k) const;

  /// The full materialized view (up to k_max entries, best first) — test
  /// and debugging hook; the public answer is Result(id).
  StatusOr<std::vector<ResultEntry>> View(QueryId id) const;

  /// Whether the view provably holds every valid matching document.
  StatusOr<bool> ViewComplete(QueryId id) const;

 protected:
  /// Creates the query's view state and runs the initial full rescan.
  Status OnRegisterQuery(QueryId id, const Query& query) override;
  /// Drops the query's view state.
  Status OnUnregisterQuery(QueryId id) override;
  /// Scores the arrival against every registered query (the Naive cost).
  void OnArrive(const DocumentView& doc) override;
  /// Membership-checks the expiry against every view; refills underflows.
  void OnExpire(const DocumentView& doc) override;
  /// The top-k prefix of the materialized view.
  std::vector<ResultEntry> CurrentResult(QueryId id) const override;

 private:
  struct QueryState {
    QueryId id = kInvalidQueryId;
    const Query* query = nullptr;
    std::size_t kmax = 0;
    ResultSet view;
    /// True when the view provably holds every valid matching document.
    bool complete = true;
  };

  /// Recomputes the view as the top-k_max of all valid documents — the
  /// expensive full rescan of D.
  void Refill(QueryState& state);

  NaiveTuning tuning_;
  std::unordered_map<QueryId, std::unique_ptr<QueryState>> states_;
};

}  // namespace ita
