#include "core/threshold_tree.h"

namespace ita {

std::size_t FlatThresholdTree::ApplyMoves(std::vector<ThetaMove>& moves) {
  // Drop no-op moves up front so the passes below only touch real work
  // (the epoch collector records a move when a theta *starts* changing;
  // it may end the epoch back where it began).
  moves.erase(std::remove_if(moves.begin(), moves.end(),
                             [](const ThetaMove& m) {
                               return m.old_theta == m.new_theta;
                             }),
              moves.end());
  if (moves.empty()) return 0;
  if (moves.size() == 1) {
    Update(moves[0].old_theta, moves[0].new_theta, moves[0].query);
    return 1;
  }

  // Pass 1 — erase the old entries: sort the moves into the tree's order
  // by their old position, then compact the survivors forward over the
  // gaps in one pass of binary-search jumps (the EraseOrdered idiom of
  // InvertedList).
  std::sort(moves.begin(), moves.end(),
            [](const ThetaMove& a, const ThetaMove& b) {
              return Order{}(Entry{a.old_theta, a.query},
                             Entry{b.old_theta, b.query});
            });
  auto write = entries_.begin();
  auto read = entries_.begin();
  for (const ThetaMove& m : moves) {
    const Entry target{m.old_theta, m.query};
    const auto pos = std::lower_bound(read, entries_.end(), target, Order{});
    ITA_DCHECK(pos != entries_.end() && pos->theta == m.old_theta &&
               pos->query == m.query)
        << "bulk retheta: old entry missing for query " << m.query;
    write = (write == read) ? pos : std::move(read, pos, write);
    read = pos;
    if (read != entries_.end()) ++read;  // drop the matched entry
  }
  write = (write == read) ? entries_.end()
                          : std::move(read, entries_.end(), write);
  entries_.erase(write, entries_.end());

  // Pass 2 — insert the new entries: sort by their new position and merge
  // backward into the reopened tail (the InsertOrdered idiom).
  std::sort(moves.begin(), moves.end(),
            [](const ThetaMove& a, const ThetaMove& b) {
              return Order{}(Entry{a.new_theta, a.query},
                             Entry{b.new_theta, b.query});
            });
  const std::size_t old_size = entries_.size();
  entries_.resize(old_size + moves.size());
  auto read_end = entries_.begin() + static_cast<std::ptrdiff_t>(old_size);
  auto write_end = entries_.end();
  for (std::size_t j = moves.size(); j-- > 0;) {
    const Entry value{moves[j].new_theta, moves[j].query};
    const auto pos =
        std::lower_bound(entries_.begin(), read_end, value, Order{});
    write_end = std::move_backward(pos, read_end, write_end);
    read_end = pos;
    *--write_end = value;
  }
  return moves.size();
}

}  // namespace ita
