#include "core/threshold_tree.h"

// ThresholdTree is header-only; this translation unit anchors the header.

namespace ita {}  // namespace ita
