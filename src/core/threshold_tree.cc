#include "core/threshold_tree.h"

namespace ita {

std::size_t FlatThresholdTree::ApplyMoves(std::vector<ThetaMove>& moves) {
  // Drop no-op moves up front so the passes below only touch real work
  // (the epoch collector records a move when a theta *starts* changing;
  // it may end the epoch back where it began).
  moves.erase(std::remove_if(moves.begin(), moves.end(),
                             [](const ThetaMove& m) {
                               return m.old_theta == m.new_theta;
                             }),
              moves.end());
  if (moves.empty()) return 0;
  if (moves.size() == 1) {
    Update(moves[0].old_theta, moves[0].new_theta, moves[0].query);
    return 1;
  }

  // Pass 1 — erase the old entries: sort the moves into the tree's order
  // by their old position, then compact the survivors forward over the
  // gaps in one pass of binary-search jumps (the EraseOrdered idiom of
  // InvertedList), mirrored across both parallel arrays.
  std::sort(moves.begin(), moves.end(),
            [](const ThetaMove& a, const ThetaMove& b) {
              return Order{}(Entry{a.old_theta, a.query},
                             Entry{b.old_theta, b.query});
            });
  const std::size_t n = size();
  std::size_t write = 0;
  std::size_t read = 0;
  for (const ThetaMove& m : moves) {
    const std::size_t pos = FindExact(m.old_theta, m.query, read);
    ITA_DCHECK(pos != npos)
        << "bulk retheta: old entry missing for query " << m.query;
    if (pos == npos) continue;
    if (write != read) {
      std::move(thetas_.begin() + static_cast<std::ptrdiff_t>(read),
                thetas_.begin() + static_cast<std::ptrdiff_t>(pos),
                thetas_.begin() + static_cast<std::ptrdiff_t>(write));
      std::move(queries_.begin() + static_cast<std::ptrdiff_t>(read),
                queries_.begin() + static_cast<std::ptrdiff_t>(pos),
                queries_.begin() + static_cast<std::ptrdiff_t>(write));
    }
    write += pos - read;
    read = pos;
    if (read != n) ++read;  // drop the matched entry
  }
  if (write != read) {
    std::move(thetas_.begin() + static_cast<std::ptrdiff_t>(read),
              thetas_.end(),
              thetas_.begin() + static_cast<std::ptrdiff_t>(write));
    std::move(queries_.begin() + static_cast<std::ptrdiff_t>(read),
              queries_.end(),
              queries_.begin() + static_cast<std::ptrdiff_t>(write));
  }
  write += n - read;
  thetas_.resize(write);
  queries_.resize(write);

  // Pass 2 — insert the new entries: sort by their new position and merge
  // backward into the reopened tail (the InsertOrdered idiom).
  std::sort(moves.begin(), moves.end(),
            [](const ThetaMove& a, const ThetaMove& b) {
              return Order{}(Entry{a.new_theta, a.query},
                             Entry{b.new_theta, b.query});
            });
  const std::size_t old_size = size();
  thetas_.resize(old_size + moves.size());
  queries_.resize(old_size + moves.size());
  std::size_t read_end = old_size;
  std::size_t write_end = size();
  for (std::size_t j = moves.size(); j-- > 0;) {
    const std::size_t pos =
        LowerBound(0, read_end, moves[j].new_theta, moves[j].query);
    std::move_backward(thetas_.begin() + static_cast<std::ptrdiff_t>(pos),
                       thetas_.begin() + static_cast<std::ptrdiff_t>(read_end),
                       thetas_.begin() + static_cast<std::ptrdiff_t>(write_end));
    std::move_backward(
        queries_.begin() + static_cast<std::ptrdiff_t>(pos),
        queries_.begin() + static_cast<std::ptrdiff_t>(read_end),
        queries_.begin() + static_cast<std::ptrdiff_t>(write_end));
    write_end -= read_end - pos;
    read_end = pos;
    --write_end;
    thetas_[write_end] = moves[j].new_theta;
    queries_[write_end] = moves[j].query;
  }
  RefreshMinTheta();
  return moves.size();
}

}  // namespace ita
