#include "core/ita_server.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "persist/snapshot.h"

namespace ita {

namespace {
constexpr double kInfinity = std::numeric_limits<double>::infinity();
}  // namespace

void ItaServer::EnableHotTermTracking(std::size_t capacity) {
#if ITA_OBS_ENABLED
  hot_terms_ = std::make_unique<obs::SpaceSavingSketch>(capacity);
#else
  (void)capacity;  // the batch path carries no sketch updates
#endif
}

Status ItaServer::OnRegisterQuery(QueryId id, const Query& query) {
  QueryState state;
  state.id = id;
  state.query = &query;
  state.theta.assign(query.terms.size(), kInfinity);
  state.theta_epoch.assign(query.terms.size(), 0);
  state.tau = kInfinity;

  const SlotIndex slot = states_.Insert(std::move(state));
  states_[slot].slot = slot;
  slot_of_.emplace(id, slot);

  // Threshold-tree entries exist from registration on; +infinity keeps the
  // query invisible to probes until the initial search assigns real
  // thresholds. Trees address the query by its slab slot.
  for (const TermWeight& tw : query.terms) {
    const bool inserted = catalog_.Ensure(tw.term).tree.Insert(kInfinity, slot);
    ITA_DCHECK(inserted);
    (void)inserted;
  }
  threshold_entries_ += query.terms.size();

  // Initial top-k over the current window contents (Section III-A).
  ExtendSearch(states_[slot]);
  RefreshMemoryGauges();
  return Status::OK();
}

Status ItaServer::OnUnregisterQuery(QueryId id) {
  const auto it = slot_of_.find(id);
  ITA_CHECK(it != slot_of_.end());
  const SlotIndex slot = it->second;
  const QueryState& state = states_[slot];
  for (std::size_t i = 0; i < state.query->terms.size(); ++i) {
    TermState* ts = catalog_.Find(state.query->terms[i].term);
    ITA_CHECK(ts != nullptr);
    const bool erased = ts->tree.Erase(state.theta[i], slot);
    ITA_CHECK(erased) << "threshold tree entry missing for query " << id;
  }
  threshold_entries_ -= state.query->terms.size();
  slot_of_.erase(it);
  const bool freed = states_.Erase(slot);
  ITA_DCHECK(freed);
  (void)freed;
  RefreshMemoryGauges();
  return Status::OK();
}

template <typename TermOp, typename Process>
void ItaServer::ProcessEventFused(const DocumentView& doc, TermOp&& term_op,
                                  Process&& process) {
  ServerStats& stats = mutable_stats();
  probe_scratch_.clear();
  for (const TermWeight& tw : doc.composition) {
    // One catalog access per term covers both the posting maintenance
    // (term_op) and the threshold probe — the colocation the TermCatalog
    // layout buys.
    TermState& ts = term_op(tw);
    // MinTheta() gate (DESIGN.md §10): an impact below every registered
    // threshold probes an empty prefix, so skipping the call is exact —
    // threshold_probe_steps would have grown by zero. MinTheta() is
    // +infinity for an empty tree, which also subsumes the empty() check.
    if (!states_.empty() && tw.weight >= ts.tree.MinTheta()) {
      stats.threshold_probe_steps += ts.tree.ProbeLessEqual(
          tw.weight, [this](SlotIndex s) { probe_scratch_.push_back(s); });
    }
  }
  if (!probe_scratch_.empty()) {
    // A document is processed once per query even if it clears several
    // local thresholds (Section III-B).
    std::sort(probe_scratch_.begin(), probe_scratch_.end());
    probe_scratch_.erase(
        std::unique(probe_scratch_.begin(), probe_scratch_.end()),
        probe_scratch_.end());
    for (const SlotIndex slot : probe_scratch_) {
      ++stats.queries_probed;
      process(states_[slot]);
    }
  }
  RefreshMemoryGauges();
}

void ItaServer::OnArrive(const DocumentView& doc) {
  ServerStats& stats = mutable_stats();
  ProcessEventFused(
      doc,
      [this, &doc, &stats](const TermWeight& tw) -> TermState& {
        TermState& ts = catalog_.Ensure(tw.term);
        const bool inserted = catalog_.InsertPosting(ts, doc.id, tw.weight);
        ITA_CHECK(inserted) << "duplicate posting for doc " << doc.id
                            << " term " << tw.term;
        ++stats.index_entries_inserted;
        return ts;
      },
      [this, &doc](QueryState& state) { ProcessArrival(state, doc); });
}

void ItaServer::OnExpire(const DocumentView& doc) {
  // Delete postings first so a refill cannot resurrect the expiring
  // document; the same per-term state fetch serves the tree probe.
  ServerStats& stats = mutable_stats();
  ProcessEventFused(
      doc,
      [this, &doc, &stats](const TermWeight& tw) -> TermState& {
        TermState* ts = catalog_.Find(tw.term);
        ITA_CHECK(ts != nullptr) << "no term state for term " << tw.term;
        const bool erased = catalog_.ErasePosting(*ts, doc.id, tw.weight);
        ITA_CHECK(erased) << "missing posting for doc " << doc.id << " term "
                          << tw.term;
        ++stats.index_entries_erased;
        return *ts;
      },
      [this, &doc](QueryState& state) { ProcessExpiry(state, doc); });
}

double ItaServer::ThetaOf(const QueryState& state, TermId term) const {
  const auto& qterms = state.query->terms;
  for (std::size_t i = 0; i < qterms.size(); ++i) {
    if (qterms[i].term == term) return state.theta[i];
  }
  ITA_DCHECK(false) << "query " << state.id << " probed for foreign term " << term;
  return kInfinity;
}

template <typename RunOp>
void ItaServer::CollectBatchAffected(std::span<const DocumentView> docs,
                                     RunOp&& run_op) {
  ServerStats& stats = mutable_stats();

  // Group the epoch's postings per term in O(postings) — no full sort and
  // no per-posting hashing. Postings radix-scatter into 2^k buckets keyed
  // by the term's low bits (same term -> same bucket; the histogram stays
  // L1-resident), then each small bucket sorts by (term, ImpactOrder),
  // which makes every term's run contiguous.
  std::size_t total_postings = 0;
  for (const DocumentView& doc : docs) {
    total_postings += doc.composition.size();
  }
  std::size_t buckets = 16;
  while (buckets < total_postings / 4) buckets <<= 1;
  const std::uint32_t mask = static_cast<std::uint32_t>(buckets) - 1;
  bucket_start_.assign(buckets + 1, 0);
  for (const DocumentView& doc : docs) {
    for (const TermWeight& tw : doc.composition) {
      ++bucket_start_[(tw.term & mask) + 1];
    }
  }
  for (std::size_t b = 1; b <= buckets; ++b) {
    bucket_start_[b] += bucket_start_[b - 1];
  }
  bucket_cursor_.assign(bucket_start_.begin(), bucket_start_.end() - 1);
  batch_postings_.resize(total_postings);
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(docs.size()); ++i) {
    const DocumentView& doc = docs[i];
    for (const TermWeight& tw : doc.composition) {
      batch_postings_[bucket_cursor_[tw.term & mask]++] =
          BatchPosting{tw.weight, doc.id, tw.term, i};
    }
  }

  batch_affected_.clear();
  BatchPosting* flat = batch_postings_.data();
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t bucket_lo = bucket_start_[b];
    const std::size_t bucket_hi = bucket_start_[b + 1];
    if (bucket_lo == bucket_hi) continue;
    if (bucket_hi - bucket_lo > 1) {
      std::sort(flat + bucket_lo, flat + bucket_hi,
                [](const BatchPosting& a, const BatchPosting& b) {
                  if (a.term != b.term) return a.term < b.term;
                  if (a.weight != b.weight) return a.weight > b.weight;
                  return a.doc > b.doc;
                });
    }

    for (std::size_t lo = bucket_lo; lo < bucket_hi;) {
      const TermId term = flat[lo].term;
      std::size_t hi = lo;
      while (hi < bucket_hi && flat[hi].term == term) ++hi;

      // ONE slab access per (term, epoch) serves both halves of the
      // term's work: the bulk index maintenance (one ordered merge pass
      // for the run) and the single threshold-tree probe.
      TermState& ts = catalog_.Ensure(term);
      run_op(ts, lo, hi);

      // The run orders by descending weight, so flat[lo] carries the
      // run's maximum impact. MinTheta() gate (DESIGN.md §10): when even
      // that maximum sits below every registered threshold, the probe
      // would visit zero entries — skip it without touching the tree
      // lanes. +infinity on an empty tree subsumes the empty() check.
      const double max_weight = flat[lo].weight;
      std::size_t probe_steps = 0;
      if (max_weight >= ts.tree.MinTheta()) {
        // One tree probe per (term, batch), with the run's max weight; the
        // per-query filter below restores exactness.
        probe_scratch_.clear();
        probe_steps = ts.tree.ProbeLessEqual(
            max_weight, [this](SlotIndex s) { probe_scratch_.push_back(s); });
        stats.threshold_probe_steps += probe_steps;
        for (const SlotIndex s : probe_scratch_) {
          const double theta = ThetaOf(states_[s], term);
          // The run orders by descending weight: stop at the first posting
          // below the query's local threshold.
          for (std::size_t p = lo; p < hi; ++p) {
            if (flat[p].weight < theta) break;
            batch_affected_.emplace_back(s, flat[p].doc_index);
          }
        }
      }
      // Hot-term load: the postings the run maintained plus the tree
      // entries its probe visited — one record per (term, epoch), feeding
      // the catalog's tier-selection EMA and (when enabled) the obs
      // sketch with the same signal.
      catalog_.NoteTermWork(term, (hi - lo) + probe_steps);
#if ITA_OBS_ENABLED
      if (hot_terms_ != nullptr) {
        hot_terms_->Add(term, (hi - lo) + probe_steps);
      }
#endif
      lo = hi;
    }
  }

  // A document is processed once per query even if it clears several local
  // thresholds (Section III-B); sorting also groups the pairs per query.
  std::sort(batch_affected_.begin(), batch_affected_.end());
  batch_affected_.erase(
      std::unique(batch_affected_.begin(), batch_affected_.end()),
      batch_affected_.end());
}

void ItaServer::OnArriveBatch(std::span<const DocumentView> docs) {
  ServerStats& stats = mutable_stats();
  if (docs.empty()) return;

  {
    ITA_OBS_SUB_SPAN(phase_recorder(), obs::SubSpan::kProbe);
    CollectBatchAffected(
        docs,
        [this, &stats](TermState& ts, std::size_t lo, std::size_t hi) {
          const std::size_t n = catalog_.InsertRunInto(
              ts, BatchRunIterator{batch_postings_.data() + lo},
              BatchRunIterator{batch_postings_.data() + hi});
          ITA_CHECK(n == hi - lo) << "duplicate posting in batch insert";
          stats.index_entries_inserted += n;
        });
  }
  if (states_.empty()) {
    ApplyEpochTierMigrations();
    RefreshMemoryGauges();
    return;
  }

  ITA_OBS_SUB_SPAN(phase_recorder(), obs::SubSpan::kRollUp);
  BeginBulkRetheta();
  for (std::size_t lo = 0; lo < batch_affected_.size();) {
    const SlotIndex slot = batch_affected_[lo].first;
    std::size_t hi = lo;
    while (hi < batch_affected_.size() && batch_affected_[hi].first == slot) {
      ++hi;
    }

    QueryState& state = states_[slot];
    stats.queries_probed += hi - lo;
    const std::uint64_t work_before =
        stats.scores_computed + stats.list_entries_read + stats.rollup_steps;
    const std::size_t k = static_cast<std::size_t>(state.query->k);
    const double sk_before = state.result.KthScore(k);

    bool improved = false;
    for (std::size_t p = lo; p < hi; ++p) {
      const DocumentView& doc = docs[batch_affected_[p].second];
      ScoreIntoResult(state, doc);
      if (*state.result.ScoreOf(doc.id) >= sk_before) improved = true;
    }
    // One roll-up per affected query per epoch, against the epoch-final
    // S_k — sequential processing rolls up after every improving arrival,
    // but each intermediate lift is subsumed by this final one.
    if (improved) {
      MarkResultChanged(state.id);
      if (tuning_.enable_rollup) RollUp(state);
    }
    // Attribute the group's work (probe hits + scoring/read/roll-up
    // steps) to the query — the rebalancer's victim-selection signal.
    state.work += (hi - lo) + (stats.scores_computed +
                               stats.list_entries_read + stats.rollup_steps -
                               work_before);
    lo = hi;
  }
  FlushBulkRetheta();
  ApplyEpochTierMigrations();
  RefreshMemoryGauges();
}

void ItaServer::OnExpireBatch(std::span<const DocumentView> docs) {
  ServerStats& stats = mutable_stats();
  if (docs.empty()) return;

  // The collection pass unindexes every term run before any per-query
  // processing below: a refill must never resurrect a doomed-but-not-yet-
  // processed document (they are already popped from the arena, so a
  // stale posting would dangle).
  {
    ITA_OBS_SUB_SPAN(phase_recorder(), obs::SubSpan::kProbe);
    CollectBatchAffected(
        docs,
        [this, &stats](TermState& ts, std::size_t lo, std::size_t hi) {
          const std::size_t n = catalog_.EraseRunFrom(
              ts, BatchRunIterator{batch_postings_.data() + lo},
              BatchRunIterator{batch_postings_.data() + hi});
          ITA_CHECK(n == hi - lo) << "missing posting in batch erase";
          stats.index_entries_erased += n;
        });
  }
  if (states_.empty()) {
    ApplyEpochTierMigrations();
    RefreshMemoryGauges();
    return;
  }

  ITA_OBS_SUB_SPAN(phase_recorder(), obs::SubSpan::kRefill);
  BeginBulkRetheta();
  for (std::size_t lo = 0; lo < batch_affected_.size();) {
    const SlotIndex slot = batch_affected_[lo].first;
    std::size_t hi = lo;
    while (hi < batch_affected_.size() && batch_affected_[hi].first == slot) {
      ++hi;
    }

    QueryState& state = states_[slot];
    stats.queries_probed += hi - lo;
    const std::uint64_t work_before =
        stats.scores_computed + stats.list_entries_read + stats.rollup_steps;
    const std::size_t k = static_cast<std::size_t>(state.query->k);

    bool lost_topk = false;
    for (std::size_t p = lo; p < hi; ++p) {
      const DocId d = docs[batch_affected_[p].second].id;
      // Invariant I1: a document above some local threshold is in R.
      ITA_DCHECK(state.result.Contains(d))
          << "I1 violated: expiring doc " << d << " missing from R of query "
          << state.id;
      if (state.result.InTopK(d, k)) lost_topk = true;
      const bool erased = state.result.Erase(d);
      ITA_CHECK(erased);
      ++stats.result_removals;
    }
    if (lost_topk) {
      MarkResultChanged(state.id);
      // One refill per affected query per epoch: resume the threshold
      // search only once, after all of the epoch's removals.
      if (state.result.KthScore(k) < state.tau) {
        ++stats.refills;
        ExtendSearch(state);
      }
    }
    state.work += (hi - lo) + (stats.scores_computed +
                               stats.list_entries_read + stats.rollup_steps -
                               work_before);
    lo = hi;
  }
  FlushBulkRetheta();
  ApplyEpochTierMigrations();
  RefreshMemoryGauges();
}

void ItaServer::ProcessArrival(QueryState& state, const DocumentView& doc) {
  const std::size_t k = static_cast<std::size_t>(state.query->k);
  const double sk_before = state.result.KthScore(k);

  ScoreIntoResult(state, doc);

  // Scores are strictly positive here (the document shares a term with the
  // query); score >= sk_before covers both "R had fewer than k documents"
  // and "d displaces the old k-th (ties resolve newest-first)".
  const double score = *state.result.ScoreOf(doc.id);
  if (score >= sk_before) {
    MarkResultChanged(state.id);
    if (tuning_.enable_rollup) RollUp(state);
  }
}

void ItaServer::ProcessExpiry(QueryState& state, const DocumentView& doc) {
  const std::size_t k = static_cast<std::size_t>(state.query->k);

  // Invariant I1: a document above some local threshold is in R, score
  // already known — "we do not need to calculate it anew".
  ITA_DCHECK(state.result.Contains(doc.id))
      << "I1 violated: expiring doc " << doc.id << " missing from R of query "
      << state.id;

  const bool was_topk = state.result.InTopK(doc.id, k);
  const bool erased = state.result.Erase(doc.id);
  ITA_CHECK(erased);
  ++mutable_stats().result_removals;

  if (!was_topk) return;  // below the top-k: simply remove (Section III-B)

  MarkResultChanged(state.id);
  // The result lost a top-k member; resume the threshold search from the
  // current local thresholds if the remaining candidates cannot prove the
  // new top-k (I2 violated).
  if (state.result.KthScore(k) < state.tau) {
    ++mutable_stats().refills;
    ExtendSearch(state);
  }
}

void ItaServer::ScoreIntoResult(QueryState& state, const DocumentView& doc) {
  const double score = ScoreDocument(doc.composition, state.query->terms);
  ++mutable_stats().scores_computed;
  state.result.Insert(doc.id, score);
  ++mutable_stats().result_insertions;
}

void ItaServer::SetTheta(QueryState& state, std::size_t i, double new_theta) {
  const double old_theta = state.theta[i];
  if (old_theta == new_theta) return;
  if (bulk_retheta_active_) {
    // Defer the tree move: record where this threshold's entry sits at
    // epoch start (once, however many times it moves this epoch) and let
    // FlushBulkRetheta relocate it in the per-term merge pass. Trees are
    // only probed at epoch boundaries, so no reader sees the lag.
    if (state.theta_epoch[i] != retheta_epoch_) {
      state.theta_epoch[i] = retheta_epoch_;
      pending_theta_.push_back(PendingTheta{state.query->terms[i].term,
                                            state.slot,
                                            static_cast<std::uint32_t>(i),
                                            old_theta});
    }
    state.theta[i] = new_theta;
    return;
  }
  TermState* ts = catalog_.Find(state.query->terms[i].term);
  ITA_CHECK(ts != nullptr);
  ts->tree.Update(old_theta, new_theta, state.slot);
  state.theta[i] = new_theta;
}

void ItaServer::BeginBulkRetheta() {
  ++retheta_epoch_;
  bulk_retheta_active_ = true;
  pending_theta_.clear();
}

void ItaServer::FlushBulkRetheta() {
  bulk_retheta_active_ = false;
  if (pending_theta_.empty()) return;

  // Group the epoch's moves per term so every touched tree applies its
  // whole move set as ONE erase-compaction + merge pass, instead of one
  // Erase+Insert pair per (query, term) move.
  std::sort(pending_theta_.begin(), pending_theta_.end(),
            [](const PendingTheta& a, const PendingTheta& b) {
              return a.term < b.term;
            });
  for (std::size_t lo = 0; lo < pending_theta_.size();) {
    const TermId term = pending_theta_[lo].term;
    std::size_t hi = lo;
    while (hi < pending_theta_.size() && pending_theta_[hi].term == term) ++hi;

    move_scratch_.clear();
    for (std::size_t p = lo; p < hi; ++p) {
      const PendingTheta& pending = pending_theta_[p];
      const QueryState& state = states_[pending.slot];
      const double new_theta = state.theta[pending.term_index];
      move_scratch_.push_back(FlatThresholdTree::ThetaMove{
          pending.old_theta, new_theta, pending.slot});
    }
    TermState* ts = catalog_.Find(term);
    ITA_DCHECK(ts != nullptr);
    ts->tree.ApplyMoves(move_scratch_);
    lo = hi;
  }
  pending_theta_.clear();
}

void ItaServer::ExtendSearch(QueryState& state) {
  const auto& qterms = state.query->terms;
  const std::size_t n = qterms.size();
  const std::size_t k = static_cast<std::size_t>(state.query->k);
  ServerStats& stats = mutable_stats();

  // Cursor i sits at the first unread entry of list i (first entry with
  // weight strictly below theta[i]); lists_[i] may be null (term holds no
  // posting), which reads as exhausted.
  std::vector<const InvertedList*> lists(n, nullptr);
  std::vector<InvertedList::Iterator> cursor(n);
  for (std::size_t i = 0; i < n; ++i) {
    lists[i] = catalog_.List(qterms[i].term);
    if (lists[i] != nullptr) cursor[i] = lists[i]->FirstBelow(state.theta[i]);
  }
  const auto exhausted = [&](std::size_t i) {
    return lists[i] == nullptr || cursor[i] == lists[i]->end();
  };

  // Reads every unread entry of list i tied at weight `w`, scoring the
  // documents not yet in R, and lowers theta[i] to w. Draining the whole
  // tie run keeps I1 exact: monitored region = {weight >= theta}.
  const auto read_run_and_lower = [&](std::size_t i, double w) {
    while (!exhausted(i) && cursor[i]->weight == w) {
      const DocId d = cursor[i]->doc;
      ++stats.list_entries_read;
      if (!state.result.Contains(d)) {
        const auto doc = store().Get(d);
        ITA_DCHECK(doc.has_value());
        ScoreIntoResult(state, *doc);
      }
      ++cursor[i];
    }
    SetTheta(state, i, w);
  };

  while (true) {
    // tau if the search stopped right now (thresholds at the next unread
    // weights, exhausted lists at 0), and the most promising list to read:
    // the one with the highest w_{Q,t} * c_t (Section III-A favors heavy
    // query terms instead of round-robin).
    double tau_candidate = 0.0;
    std::size_t best = n;
    double best_key = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (exhausted(i)) continue;
      const double key = qterms[i].weight * cursor[i]->weight;
      tau_candidate += key;
      if (key > best_key) {
        best_key = key;
        best = i;
      }
    }

    if (best == n) {
      // Every list exhausted: R holds all valid documents with nonzero
      // similarity; thresholds drop to 0 (fully monitored lists).
      for (std::size_t i = 0; i < n; ++i) SetTheta(state, i, 0.0);
      break;
    }

    if (state.result.KthScore(k) >= tau_candidate) {
      // k documents are verified (score >= tau). Finalize the local
      // thresholds at the "latest c_t values" (Section III-A), draining
      // boundary ties; exhausted lists are fully monitored.
      for (std::size_t i = 0; i < n; ++i) {
        if (exhausted(i)) {
          SetTheta(state, i, 0.0);
        } else {
          read_run_and_lower(i, cursor[i]->weight);
        }
      }
      break;
    }

    read_run_and_lower(best, cursor[best]->weight);
  }

  state.tau = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    state.tau += qterms[i].weight * state.theta[i];
  }
  ITA_DCHECK(std::isfinite(state.tau));
}

void ItaServer::RollUp(QueryState& state) {
  const auto& qterms = state.query->terms;
  const std::size_t n = qterms.size();
  const std::size_t k = static_cast<std::size_t>(state.query->k);
  ServerStats& stats = mutable_stats();

  const double sk = state.result.KthScore(k);

  while (true) {
    // Candidate roll-up per list: lift theta to the smallest distinct
    // weight above it ("the preceding entry"). The paper lifts the list
    // with the smallest w_{Q,t} * c_t first.
    std::size_t best = n;
    double best_key = kInfinity;
    double best_target = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const InvertedList* list = catalog_.List(qterms[i].term);
      if (list == nullptr) continue;
      const auto target = list->NextWeightAbove(state.theta[i]);
      if (!target.has_value()) continue;
      const double key = qterms[i].weight * *target;
      if (key < best_key) {
        best_key = key;
        best = i;
        best_target = *target;
      }
    }
    if (best == n) break;

    const double new_tau =
        state.tau + qterms[best].weight * (best_target - state.theta[best]);
    if (new_tau > sk) break;  // stop at the last iteration with tau <= S_k

    // Evict from R the documents de-monitored by this lift: entries of the
    // rolled list with weight in [theta_best, best_target) that fall below
    // every (new) local threshold. Such documents score < new_tau <= S_k,
    // so they cannot be in the top-k (DESIGN.md §2, item 5).
    const InvertedList* list = catalog_.List(qterms[best].term);
    const double old_theta = state.theta[best];
    SetTheta(state, best, best_target);
    state.tau = new_tau;
    ++stats.rollup_steps;

    const auto segment_end = list->FirstBelow(old_theta);
    for (auto it = list->FirstBelow(best_target); it != segment_end; ++it) {
      const DocId d = it->doc;
      const auto doc = store().Get(d);
      ITA_DCHECK(doc.has_value());
      bool monitored = false;
      for (std::size_t j = 0; j < n; ++j) {
        // Only terms the document contains have impact entries; absent
        // terms (weight 0) are never ahead of a threshold, even theta = 0.
        const double w = CompositionWeight(doc->composition, qterms[j].term);
        if (w > 0.0 && w >= state.theta[j]) {
          monitored = true;
          break;
        }
      }
      if (!monitored) {
        const bool erased = state.result.Erase(d);
        ITA_DCHECK(erased) << "I1 violated during roll-up";
        if (erased) {
          ++stats.rollup_evictions;
          ++stats.result_removals;
        }
      }
    }
  }
}

Status ItaServer::CheckpointStrategy(persist::SnapshotWriter& snapshot) const {
  std::string state;
  persist::WireWriter w(&state);
  w.PutU64(retheta_epoch_);

  // Tier metadata for every term that diverged from a fresh TermState.
  // The lists and trees themselves are rebuilt on restore.
  std::uint64_t n_meta = 0;
  for (TermId t = 0; t < catalog_.term_count(); ++t) {
    const TermState& ts = *catalog_.Find(t);
    if (ts.list_materialized || ts.hot_tier || ts.work_ema != 0.0) ++n_meta;
  }
  w.PutU64(n_meta);
  for (TermId t = 0; t < catalog_.term_count(); ++t) {
    const TermState& ts = *catalog_.Find(t);
    if (!ts.list_materialized && !ts.hot_tier && ts.work_ema == 0.0) continue;
    w.PutU32(t);
    w.PutBool(ts.list_materialized);
    w.PutBool(ts.hot_tier);
    w.PutDouble(ts.work_ema);
  }

  // The slab verbatim: every slot in index order (occupied or vacant),
  // then the free list in recycling order — together they reproduce the
  // exact layout, so restored threshold trees carry identical slots.
  w.PutU64(states_.slot_count());
  for (SlotIndex slot = 0; slot < states_.slot_count(); ++slot) {
    const QueryState* state_ptr = states_.Get(slot);
    w.PutBool(state_ptr != nullptr);
    if (state_ptr == nullptr) continue;
    const QueryState& qs = *state_ptr;
    w.PutU32(qs.id);
    w.PutU64(qs.theta.size());
    for (const double theta : qs.theta) w.PutDouble(theta);
    for (const std::uint64_t epoch : qs.theta_epoch) w.PutU64(epoch);
    w.PutDouble(qs.tau);
    w.PutU64(qs.work);
    w.PutU64(qs.result.size());
    for (const ResultSet::Entry& entry : qs.result) {
      w.PutU64(entry.doc);
      w.PutDouble(entry.score);
    }
  }
  w.PutU64(states_.free_slots().size());
  for (const SlotIndex slot : states_.free_slots()) w.PutU32(slot);

  snapshot.AddSection("ita/state", state);
  return Status::OK();
}

Status ItaServer::OnAdoptWindow() {
  // Inverted lists are a pure function of the window contents (the same
  // re-insertion RestoreStrategy runs): index every valid document of
  // the adopted arena. Impact order is content-determined, so a shard
  // adopting a window indexes it exactly as if it had ingested it.
  for (const DocumentView doc : store()) {
    for (const TermWeight& tw : doc.composition) {
      catalog_.InsertPosting(catalog_.Ensure(tw.term), doc.id, tw.weight);
    }
  }
  RefreshMemoryGauges();
  return Status::OK();
}

Status ItaServer::RestoreStrategy(const persist::SnapshotReader& snapshot) {
  ITA_ASSIGN_OR_RETURN(const std::string_view bytes,
                       snapshot.Section("ita/state"));
  persist::WireReader r(bytes);
  ITA_RETURN_NOT_OK(r.ReadU64(&retheta_epoch_));

  // Tier metadata first: block granularity and probe layout must be in
  // place before postings and tree entries are re-inserted, so the
  // rebuilt structures land directly in their persisted representation.
  std::uint64_t n_meta = 0;
  ITA_RETURN_NOT_OK(r.ReadCount(&n_meta, 14));
  for (std::uint64_t i = 0; i < n_meta; ++i) {
    std::uint32_t term = 0;
    bool materialized = false;
    bool hot = false;
    double work_ema = 0.0;
    ITA_RETURN_NOT_OK(r.ReadU32(&term));
    ITA_RETURN_NOT_OK(r.ReadBool(&materialized));
    ITA_RETURN_NOT_OK(r.ReadBool(&hot));
    ITA_RETURN_NOT_OK(r.ReadDouble(&work_ema));
    catalog_.RestoreTermMeta(term, materialized, hot, work_ema);
  }

  // Inverted lists are a pure function of the window contents: re-insert
  // every valid document's postings from the restored arena. Impact order
  // is content-determined, so the rebuilt lists are identical.
  for (const DocumentView doc : store()) {
    for (const TermWeight& tw : doc.composition) {
      catalog_.InsertPosting(catalog_.Ensure(tw.term), doc.id, tw.weight);
    }
  }

  // Reproduce the slab layout exactly: occupy every slot in index order,
  // fill the persisted states, then free the vacant slots in the
  // persisted recycling order (Erase push_back rebuilds the LIFO stack).
  std::uint64_t slot_count = 0;
  ITA_RETURN_NOT_OK(r.ReadCount(&slot_count, 1));
  std::vector<bool> occupied(slot_count, false);
  for (std::uint64_t s = 0; s < slot_count; ++s) {
    const SlotIndex slot = states_.Insert(QueryState{});
    if (slot != s) {
      return Status::Internal("slot map not freshly constructed on restore");
    }
  }
  std::uint64_t vacant = 0;
  for (std::uint64_t s = 0; s < slot_count; ++s) {
    const SlotIndex slot = static_cast<SlotIndex>(s);
    bool is_occupied = false;
    ITA_RETURN_NOT_OK(r.ReadBool(&is_occupied));
    occupied[s] = is_occupied;
    if (!is_occupied) {
      ++vacant;
      continue;
    }
    QueryState& qs = states_[slot];
    ITA_RETURN_NOT_OK(r.ReadU32(&qs.id));
    qs.slot = slot;
    qs.query = &GetQuery(qs.id);
    std::uint64_t n_terms = 0;
    ITA_RETURN_NOT_OK(r.ReadCount(&n_terms, 16));
    if (n_terms != qs.query->terms.size()) {
      return Status::IoError("ita: theta count disagrees with query " +
                             std::to_string(qs.id));
    }
    qs.theta.resize(n_terms);
    qs.theta_epoch.resize(n_terms);
    for (std::uint64_t i = 0; i < n_terms; ++i) {
      ITA_RETURN_NOT_OK(r.ReadDouble(&qs.theta[i]));
    }
    for (std::uint64_t i = 0; i < n_terms; ++i) {
      ITA_RETURN_NOT_OK(r.ReadU64(&qs.theta_epoch[i]));
    }
    ITA_RETURN_NOT_OK(r.ReadDouble(&qs.tau));
    ITA_RETURN_NOT_OK(r.ReadU64(&qs.work));
    std::uint64_t n_result = 0;
    ITA_RETURN_NOT_OK(r.ReadCount(&n_result, 16));
    for (std::uint64_t i = 0; i < n_result; ++i) {
      std::uint64_t doc = 0;
      double score = 0.0;
      ITA_RETURN_NOT_OK(r.ReadU64(&doc));
      ITA_RETURN_NOT_OK(r.ReadDouble(&score));
      qs.result.Insert(doc, score);
    }
    slot_of_.emplace(qs.id, slot);

    // Re-register the persisted thresholds in their terms' trees: sorted
    // arrays make the rebuilt layout identical to the serialized one.
    for (std::uint64_t i = 0; i < n_terms; ++i) {
      const bool inserted =
          catalog_.Ensure(qs.query->terms[i].term).tree.Insert(qs.theta[i], slot);
      if (!inserted) {
        return Status::IoError("ita: duplicate threshold entry for query " +
                               std::to_string(qs.id));
      }
    }
    threshold_entries_ += n_terms;
  }

  std::uint64_t n_free = 0;
  ITA_RETURN_NOT_OK(r.ReadCount(&n_free, 4));
  if (n_free != vacant) {
    return Status::IoError("ita: free-list length disagrees with slab");
  }
  for (std::uint64_t i = 0; i < n_free; ++i) {
    std::uint32_t slot = 0;
    ITA_RETURN_NOT_OK(r.ReadU32(&slot));
    if (slot >= slot_count || occupied[slot]) {
      return Status::IoError("ita: free list names an occupied slot");
    }
    const bool freed = states_.Erase(slot);
    if (!freed) {
      return Status::IoError("ita: free list repeats slot " +
                             std::to_string(slot));
    }
  }
  ITA_RETURN_NOT_OK(r.ExpectEnd());
  RefreshMemoryGauges();
  return Status::OK();
}

void ItaServer::RefreshMemoryGauges() {
  ServerStats& stats = mutable_stats();
  stats.catalog_slab_bytes = catalog_.slab_bytes();
  stats.postings_bytes = catalog_.postings_bytes();
  stats.threshold_entries = threshold_entries_;
  stats.query_state_slots = states_.slot_count();
  stats.hot_tier_terms = catalog_.hot_tier_terms();
}

void ItaServer::ApplyEpochTierMigrations() {
  const TermCatalog::TierMigrations done = catalog_.ApplyTierMigrations();
  ServerStats& stats = mutable_stats();
  stats.tier_promotions += done.promotions;
  stats.tier_demotions += done.demotions;
}

void ItaServer::DrainTopWorkQueries(
    std::size_t max, std::vector<std::pair<QueryId, std::uint64_t>>& out) {
  out.clear();
  states_.ForEach([&out](SlotIndex /*slot*/, QueryState& state) {
    if (state.work > 0) out.emplace_back(state.id, state.work);
    state.work >>= 1;  // decay: quiet queries stop looking hot
  });
  std::sort(out.begin(), out.end(),
            [](const std::pair<QueryId, std::uint64_t>& a,
               const std::pair<QueryId, std::uint64_t>& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (out.size() > max) out.resize(max);
}

std::vector<ResultEntry> ItaServer::CurrentResult(QueryId id) const {
  const auto it = slot_of_.find(id);
  ITA_CHECK(it != slot_of_.end());
  const QueryState& state = states_[it->second];
  return state.result.TopK(static_cast<std::size_t>(state.query->k));
}

StatusOr<double> ItaServer::InfluenceThreshold(QueryId id) const {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  return states_[it->second].tau;
}

StatusOr<double> ItaServer::LocalThreshold(QueryId id, TermId term) const {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  const QueryState& state = states_[it->second];
  for (std::size_t i = 0; i < state.query->terms.size(); ++i) {
    if (state.query->terms[i].term == term) return state.theta[i];
  }
  return Status::OutOfRange("term not part of the query");
}

StatusOr<std::vector<ResultEntry>> ItaServer::Candidates(QueryId id) const {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  const QueryState& state = states_[it->second];
  std::vector<ResultEntry> out;
  out.reserve(state.result.size());
  for (const auto& entry : state.result) {
    out.push_back(ResultEntry{entry.doc, entry.score});
  }
  return out;
}

Status ItaServer::ValidatePruningMetadata() const {
  for (std::size_t t = 0; t < catalog_.term_count(); ++t) {
    const TermState* ts = catalog_.Find(static_cast<TermId>(t));
    ITA_DCHECK(ts != nullptr);
    if (ts == nullptr) continue;
    const double want =
        ts->tree.empty() ? kInfinity : ts->tree.At(0).theta;
    if (ts->tree.MinTheta() != want) {
      return Status::Internal(
          "term " + std::to_string(t) + ": cached MinTheta " +
          std::to_string(ts->tree.MinTheta()) + " != front theta " +
          std::to_string(want));
    }
    if (!ts->list.ValidateBlockMax()) {
      return Status::Internal("term " + std::to_string(t) +
                              ": block-max array out of sync with postings");
    }
  }
  // Tier coherence (DESIGN.md §12): a term's list granularity and tree
  // probe layout must both match its recorded tier — a half-migrated
  // term would answer correctly but account its tier wrong.
  if (!catalog_.ValidateTiers()) {
    return Status::Internal(
        "tier metadata out of sync with list/tree representations");
  }
  return Status::OK();
}

}  // namespace ita
