#include "core/ita_server.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace ita {

namespace {
constexpr double kInfinity = std::numeric_limits<double>::infinity();
}  // namespace

Status ItaServer::OnRegisterQuery(QueryId id, const Query& query) {
  auto state = std::make_unique<QueryState>();
  state->id = id;
  state->query = &query;
  state->theta.assign(query.terms.size(), kInfinity);
  state->tau = kInfinity;

  // Threshold-tree entries exist from registration on; +infinity keeps the
  // query invisible to probes until the initial search assigns real
  // thresholds.
  for (const TermWeight& tw : query.terms) {
    trees_[tw.term].Insert(kInfinity, id);
  }

  QueryState* raw = state.get();
  states_.emplace(id, std::move(state));

  // Initial top-k over the current window contents (Section III-A).
  ExtendSearch(*raw);
  return Status::OK();
}

Status ItaServer::OnUnregisterQuery(QueryId id) {
  const auto it = states_.find(id);
  ITA_CHECK(it != states_.end());
  const QueryState& state = *it->second;
  for (std::size_t i = 0; i < state.query->terms.size(); ++i) {
    const TermId term = state.query->terms[i].term;
    const auto tree = trees_.find(term);
    ITA_CHECK(tree != trees_.end());
    const bool erased = tree->second.Erase(state.theta[i], id);
    ITA_CHECK(erased) << "threshold tree entry missing for query " << id;
  }
  states_.erase(it);
  return Status::OK();
}

void ItaServer::CollectAffectedQueries(const Document& doc,
                                       std::vector<QueryId>* out) {
  out->clear();
  ServerStats& stats = mutable_stats();
  for (const TermWeight& tw : doc.composition) {
    const auto it = trees_.find(tw.term);
    if (it == trees_.end() || it->second.empty()) continue;
    stats.threshold_probe_steps += it->second.ProbeLessEqual(
        tw.weight, [out](QueryId q) { out->push_back(q); });
  }
  // A document is processed once per query even if it clears several local
  // thresholds (Section III-B).
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

void ItaServer::OnArrive(const Document& doc) {
  mutable_stats().index_entries_inserted += index_.AddDocument(doc);
  if (states_.empty()) return;

  CollectAffectedQueries(doc, &probe_scratch_);
  for (const QueryId id : probe_scratch_) {
    ++mutable_stats().queries_probed;
    ProcessArrival(*states_.at(id), doc);
  }
}

void ItaServer::OnExpire(const Document& doc) {
  // Delete postings first so a refill cannot resurrect the expiring
  // document.
  mutable_stats().index_entries_erased += index_.RemoveDocument(doc);
  if (states_.empty()) return;

  CollectAffectedQueries(doc, &probe_scratch_);
  for (const QueryId id : probe_scratch_) {
    ++mutable_stats().queries_probed;
    ProcessExpiry(*states_.at(id), doc);
  }
}

void ItaServer::ProcessArrival(QueryState& state, const Document& doc) {
  const std::size_t k = static_cast<std::size_t>(state.query->k);
  const double sk_before = state.result.KthScore(k);

  ScoreIntoResult(state, doc);

  // Scores are strictly positive here (the document shares a term with the
  // query); score >= sk_before covers both "R had fewer than k documents"
  // and "d displaces the old k-th (ties resolve newest-first)".
  const double score = *state.result.ScoreOf(doc.id);
  if (score >= sk_before) {
    MarkResultChanged(state.id);
    if (tuning_.enable_rollup) RollUp(state);
  }
}

void ItaServer::ProcessExpiry(QueryState& state, const Document& doc) {
  const std::size_t k = static_cast<std::size_t>(state.query->k);

  // Invariant I1: a document above some local threshold is in R, score
  // already known — "we do not need to calculate it anew".
  ITA_DCHECK(state.result.Contains(doc.id))
      << "I1 violated: expiring doc " << doc.id << " missing from R of query "
      << state.id;

  const bool was_topk = state.result.InTopK(doc.id, k);
  const bool erased = state.result.Erase(doc.id);
  ITA_CHECK(erased);
  ++mutable_stats().result_removals;

  if (!was_topk) return;  // below the top-k: simply remove (Section III-B)

  MarkResultChanged(state.id);
  // The result lost a top-k member; resume the threshold search from the
  // current local thresholds if the remaining candidates cannot prove the
  // new top-k (I2 violated).
  if (state.result.KthScore(k) < state.tau) {
    ++mutable_stats().refills;
    ExtendSearch(state);
  }
}

void ItaServer::ScoreIntoResult(QueryState& state, const Document& doc) {
  const double score = ScoreDocument(doc.composition, state.query->terms);
  ++mutable_stats().scores_computed;
  state.result.Insert(doc.id, score);
  ++mutable_stats().result_insertions;
}

void ItaServer::SetTheta(QueryState& state, std::size_t i, double new_theta) {
  const double old_theta = state.theta[i];
  if (old_theta == new_theta) return;
  const TermId term = state.query->terms[i].term;
  const auto tree = trees_.find(term);
  ITA_CHECK(tree != trees_.end());
  tree->second.Update(old_theta, new_theta, state.id);
  state.theta[i] = new_theta;
}

void ItaServer::ExtendSearch(QueryState& state) {
  const auto& qterms = state.query->terms;
  const std::size_t n = qterms.size();
  const std::size_t k = static_cast<std::size_t>(state.query->k);
  ServerStats& stats = mutable_stats();

  // Cursor i sits at the first unread entry of list i (first entry with
  // weight strictly below theta[i]); lists_[i] may be null (term never
  // indexed), which reads as exhausted.
  std::vector<const InvertedList*> lists(n, nullptr);
  std::vector<InvertedList::Iterator> cursor(n);
  for (std::size_t i = 0; i < n; ++i) {
    lists[i] = index_.List(qterms[i].term);
    if (lists[i] != nullptr) cursor[i] = lists[i]->FirstBelow(state.theta[i]);
  }
  const auto exhausted = [&](std::size_t i) {
    return lists[i] == nullptr || cursor[i] == lists[i]->end();
  };

  // Reads every unread entry of list i tied at weight `w`, scoring the
  // documents not yet in R, and lowers theta[i] to w. Draining the whole
  // tie run keeps I1 exact: monitored region = {weight >= theta}.
  const auto read_run_and_lower = [&](std::size_t i, double w) {
    while (!exhausted(i) && cursor[i]->weight == w) {
      const DocId d = cursor[i]->doc;
      ++stats.list_entries_read;
      if (!state.result.Contains(d)) {
        const Document* doc = store().Get(d);
        ITA_DCHECK(doc != nullptr);
        ScoreIntoResult(state, *doc);
      }
      ++cursor[i];
    }
    SetTheta(state, i, w);
  };

  while (true) {
    // tau if the search stopped right now (thresholds at the next unread
    // weights, exhausted lists at 0), and the most promising list to read:
    // the one with the highest w_{Q,t} * c_t (Section III-A favors heavy
    // query terms instead of round-robin).
    double tau_candidate = 0.0;
    std::size_t best = n;
    double best_key = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (exhausted(i)) continue;
      const double key = qterms[i].weight * cursor[i]->weight;
      tau_candidate += key;
      if (key > best_key) {
        best_key = key;
        best = i;
      }
    }

    if (best == n) {
      // Every list exhausted: R holds all valid documents with nonzero
      // similarity; thresholds drop to 0 (fully monitored lists).
      for (std::size_t i = 0; i < n; ++i) SetTheta(state, i, 0.0);
      break;
    }

    if (state.result.KthScore(k) >= tau_candidate) {
      // k documents are verified (score >= tau). Finalize the local
      // thresholds at the "latest c_t values" (Section III-A), draining
      // boundary ties; exhausted lists are fully monitored.
      for (std::size_t i = 0; i < n; ++i) {
        if (exhausted(i)) {
          SetTheta(state, i, 0.0);
        } else {
          read_run_and_lower(i, cursor[i]->weight);
        }
      }
      break;
    }

    read_run_and_lower(best, cursor[best]->weight);
  }

  state.tau = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    state.tau += qterms[i].weight * state.theta[i];
  }
  ITA_DCHECK(std::isfinite(state.tau));
}

void ItaServer::RollUp(QueryState& state) {
  const auto& qterms = state.query->terms;
  const std::size_t n = qterms.size();
  const std::size_t k = static_cast<std::size_t>(state.query->k);
  ServerStats& stats = mutable_stats();

  const double sk = state.result.KthScore(k);

  while (true) {
    // Candidate roll-up per list: lift theta to the smallest distinct
    // weight above it ("the preceding entry"). The paper lifts the list
    // with the smallest w_{Q,t} * c_t first.
    std::size_t best = n;
    double best_key = kInfinity;
    double best_target = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const InvertedList* list = index_.List(qterms[i].term);
      if (list == nullptr) continue;
      const auto target = list->NextWeightAbove(state.theta[i]);
      if (!target.has_value()) continue;
      const double key = qterms[i].weight * *target;
      if (key < best_key) {
        best_key = key;
        best = i;
        best_target = *target;
      }
    }
    if (best == n) break;

    const double new_tau =
        state.tau + qterms[best].weight * (best_target - state.theta[best]);
    if (new_tau > sk) break;  // stop at the last iteration with tau <= S_k

    // Evict from R the documents de-monitored by this lift: entries of the
    // rolled list with weight in [theta_best, best_target) that fall below
    // every (new) local threshold. Such documents score < new_tau <= S_k,
    // so they cannot be in the top-k (DESIGN.md §2, item 5).
    const InvertedList* list = index_.List(qterms[best].term);
    const double old_theta = state.theta[best];
    SetTheta(state, best, best_target);
    state.tau = new_tau;
    ++stats.rollup_steps;

    const auto segment_end = list->FirstBelow(old_theta);
    for (auto it = list->FirstBelow(best_target); it != segment_end; ++it) {
      const DocId d = it->doc;
      const Document* doc = store().Get(d);
      ITA_DCHECK(doc != nullptr);
      bool monitored = false;
      for (std::size_t j = 0; j < n; ++j) {
        // Only terms the document contains have impact entries; absent
        // terms (weight 0) are never ahead of a threshold, even theta = 0.
        const double w = CompositionWeight(doc->composition, qterms[j].term);
        if (w > 0.0 && w >= state.theta[j]) {
          monitored = true;
          break;
        }
      }
      if (!monitored) {
        const bool erased = state.result.Erase(d);
        ITA_DCHECK(erased) << "I1 violated during roll-up";
        if (erased) {
          ++stats.rollup_evictions;
          ++stats.result_removals;
        }
      }
    }
  }
}

std::vector<ResultEntry> ItaServer::CurrentResult(QueryId id) const {
  const auto it = states_.find(id);
  ITA_CHECK(it != states_.end());
  const QueryState& state = *it->second;
  return state.result.TopK(static_cast<std::size_t>(state.query->k));
}

StatusOr<double> ItaServer::InfluenceThreshold(QueryId id) const {
  const auto it = states_.find(id);
  if (it == states_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  return it->second->tau;
}

StatusOr<double> ItaServer::LocalThreshold(QueryId id, TermId term) const {
  const auto it = states_.find(id);
  if (it == states_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  const QueryState& state = *it->second;
  for (std::size_t i = 0; i < state.query->terms.size(); ++i) {
    if (state.query->terms[i].term == term) return state.theta[i];
  }
  return Status::OutOfRange("term not part of the query");
}

StatusOr<std::vector<ResultEntry>> ItaServer::Candidates(QueryId id) const {
  const auto it = states_.find(id);
  if (it == states_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  const QueryState& state = *it->second;
  std::vector<ResultEntry> out;
  out.reserve(state.result.size());
  for (const auto& entry : state.result) {
    out.push_back(ResultEntry{entry.doc, entry.score});
  }
  return out;
}

}  // namespace ita
