/// \file
/// The unified per-term catalog (DESIGN.md §7): for every dense TermId,
/// ONE colocated TermState holding the term's impact-ordered inverted
/// list *and* its flat threshold tree, side by side in a single growable
/// slab indexed by TermId.
///
/// ITA's per-term economy is the pair "apply this term's postings, then
/// probe this term's threshold tree" executed for every term an epoch
/// touches. The seed paid two lookups per term for it — a dense-array
/// fetch into InvertedIndex plus a hash lookup into a separate
/// unordered_map<TermId, ThresholdTree> — with the two structures in
/// unrelated heap regions. The catalog makes it one indexed slab access:
/// Ensure/Find lands on a TermState whose list and tree share a cache
/// neighborhood, and the whole arrival/expiration hot path runs against
/// that one pointer.
///
/// The catalog subsumes the former index/InvertedIndex: the document-
/// granular maintenance (AddDocument/RemoveDocument), the epoch-granular
/// run primitives (InsertRun/EraseRun), and the self-contained batch
/// helpers (AddBatch/RemoveBatch) all live here, with identical
/// semantics. Threshold trees are mutated directly through TermState by
/// the server (which owns the theta bookkeeping); the catalog tracks
/// posting counts and slab footprint for the memory gauges.
///
/// Lists and trees are materialized lazily: Find returns nullptr for a
/// term never seen by either side; List additionally returns nullptr
/// until the term holds (or once held) a posting, preserving the former
/// InvertedIndex contract.

#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "core/threshold_tree.h"
#include "index/inverted_list.h"
#include "stream/document.h"

namespace ita {

/// Everything the server keeps per term, colocated: the postings and the
/// registered local thresholds over them.
struct TermState {
  InvertedList list;        ///< the term's impact-ordered postings
  FlatThresholdTree tree;   ///< the local thresholds registered over them
  /// True once the list ever held a posting (it may be empty again after
  /// expirations) — preserves the "materialized list" accounting.
  bool list_materialized = false;
  /// True while the term sits in the hot tier: denser block-max metadata
  /// on the list, wide probe layout on the tree (DESIGN.md §12).
  bool hot_tier = false;
  /// EMA of the term's per-epoch work (run length + probe steps — the
  /// same signal the obs hot-term sketch consumes), the tier selector.
  double work_ema = 0.0;
};

/// Tier-selection policy (DESIGN.md §12): when the EMA of a term's
/// per-epoch work crosses `promote_ema` the term migrates to the hot
/// representation; it returns to the cold one only when the EMA decays
/// under `demote_ema`. The gap between the two thresholds is the
/// hysteresis band that keeps borderline terms from thrashing;
/// `max_migrations_per_epoch` bounds the migration work any single epoch
/// absorbs. Migrations happen only at epoch boundaries (after the bulk
/// retheta flush, before the next collection), so no probe or search
/// ever observes a half-migrated term.
struct TierPolicy {
  /// Master switch; off = every term stays in the cold representation.
  bool enabled = true;
  /// EMA work at or above which a cold term promotes.
  double promote_ema = 768.0;
  /// EMA work at or below which a hot term demotes (< promote_ema).
  double demote_ema = 192.0;
  /// EMA smoothing factor applied per epoch the term is touched.
  double alpha = 0.25;
  /// Upper bound on promotions + demotions per epoch boundary.
  std::size_t max_migrations_per_epoch = 8;
  /// Hot-tier block-max granularity (log2 entries per block): 4 = 16
  /// entries per block, 4× denser than the cold default of 64.
  std::size_t hot_block_bits = 4;
};

/// The per-term slab of colocated TermStates; see the file comment for
/// the layout and the reference-invalidation rule. Not thread-safe: one
/// catalog per server, mutated only by its owner (one per shard under
/// sharding).
class TermCatalog {
 public:
  /// The state for `term`, creating it (and growing the slab) on first
  /// touch. References are invalidated by slab growth — hold them only
  /// across code that calls Ensure for no new term.
  TermState& Ensure(TermId term) {
    if (term >= states_.size()) {
      states_.resize(static_cast<std::size_t>(term) + 1);
    }
    return states_[term];
  }

  /// The state for `term`, or nullptr if the term was never touched.
  TermState* Find(TermId term) {
    if (term >= states_.size()) return nullptr;
    return &states_[term];
  }
  /// Const overload of Find().
  const TermState* Find(TermId term) const {
    if (term >= states_.size()) return nullptr;
    return &states_[term];
  }

  /// The inverted list for `term`, or nullptr if no posting was ever
  /// inserted for it. The pointer stays valid while the slab does not
  /// grow past `term` (Ensure of a larger term may move it).
  const InvertedList* List(TermId term) const {
    const TermState* ts = Find(term);
    if (ts == nullptr || !ts->list_materialized) return nullptr;
    return &ts->list;
  }

  /// Inserts one posting per composition entry. Returns the number of
  /// postings inserted. The document id must be set.
  std::size_t AddDocument(const Document& doc);

  /// Removes the document's postings (exact inverse of AddDocument).
  /// Returns the number of postings removed.
  std::size_t RemoveDocument(const Document& doc);

  /// Batch (epoch) maintenance: inserts the postings of all documents,
  /// grouped per term and applied to each inverted list as one ordered
  /// run — exactly equivalent to AddDocument on each document. Returns
  /// the number of postings inserted.
  std::size_t AddBatch(const std::vector<const Document*>& docs);

  /// Exact inverse of AddBatch (documents passed by value because the
  /// expiration path owns them by then). Returns postings removed.
  std::size_t RemoveBatch(const std::vector<Document>& docs);

  /// Single posting primitives against an already-fetched TermState —
  /// the per-event path touches each term's state once for both the
  /// posting and the tree probe. `ts` must belong to this catalog.
  bool InsertPosting(TermState& ts, DocId doc, double weight) {
    MarkMaterialized(ts);
    const bool inserted = ts.list.Insert(doc, weight);
    if (inserted) ++total_postings_;
    return inserted;
  }
  /// Exact inverse of InsertPosting; returns false if the posting is
  /// absent. `ts` must belong to this catalog.
  bool ErasePosting(TermState& ts, DocId doc, double weight) {
    const bool erased = ts.list.Erase(doc, weight);
    if (erased) --total_postings_;
    return erased;
  }

  /// Run primitives against an already-fetched TermState: apply a whole
  /// epoch's postings for the term as one ordered merge (insert) or
  /// compaction (erase) pass. `FwdIt` dereferences to an ImpactEntry (by
  /// value or reference); the run must follow ImpactOrder. Return
  /// postings inserted/erased.
  template <typename FwdIt>
  std::size_t InsertRunInto(TermState& ts, FwdIt first, FwdIt last) {
    MarkMaterialized(ts);
    const std::size_t n = ts.list.InsertOrdered(first, last);
    total_postings_ += n;
    return n;
  }
  /// Exact inverse of InsertRunInto: erases the run's postings as one
  /// compaction pass. Returns postings erased.
  template <typename FwdIt>
  std::size_t EraseRunFrom(TermState& ts, FwdIt first, FwdIt last) {
    const std::size_t n = ts.list.EraseOrdered(first, last);
    total_postings_ -= n;
    return n;
  }

  /// Term-keyed run primitives (the former InvertedIndex API).
  template <typename FwdIt>
  std::size_t InsertRun(TermId term, FwdIt first, FwdIt last) {
    return InsertRunInto(Ensure(term), first, last);
  }
  /// EraseRunFrom keyed by term; a never-touched term erases nothing.
  template <typename FwdIt>
  std::size_t EraseRun(TermId term, FwdIt first, FwdIt last) {
    TermState* ts = Find(term);
    if (ts == nullptr) return 0;
    return EraseRunFrom(*ts, first, last);
  }

  // Frequency-adaptive tiering (DESIGN.md §12).

  /// Installs the tier policy. Meant to be set once before streaming;
  /// disabling it later leaves already-hot terms hot (harmless — both
  /// representations are exact).
  void SetTierPolicy(const TierPolicy& policy) { tier_policy_ = policy; }
  /// The active tier policy.
  const TierPolicy& tier_policy() const { return tier_policy_; }

  /// Records one epoch's work for `term` (run length + probe steps, the
  /// per-term-run signal the obs sketch consumes). Deferred into a
  /// scratch list; the EMA update and any migration happen at the next
  /// ApplyTierMigrations(). No-op while the policy is disabled.
  void NoteTermWork(TermId term, std::size_t work) {
    if (!tier_policy_.enabled) return;
    epoch_work_.emplace_back(term, work);
  }

  /// Outcome of one epoch boundary's tier migrations.
  struct TierMigrations {
    std::size_t promotions = 0;  ///< terms moved cold → hot
    std::size_t demotions = 0;   ///< terms moved hot → cold
  };

  /// Epoch-boundary tier maintenance: folds every NoteTermWork record
  /// since the last call into the per-term EMAs, then migrates terms
  /// whose EMA crossed out of the hysteresis band — at most
  /// max_migrations_per_epoch of them, promotions and demotions counted
  /// together. Callers invoke this strictly between epochs (nothing may
  /// hold list iterators or be mid-probe). Untouched terms keep their
  /// tier: an idle hot term costs only its (denser) metadata, and its
  /// next touch resumes the EMA decay.
  TierMigrations ApplyTierMigrations();

  /// Terms currently in the hot tier.
  std::size_t hot_tier_terms() const { return hot_terms_; }

  /// Restore-path primitive (DESIGN.md §13): reinstates a term's
  /// persisted tier metadata on a freshly rebuilt catalog — the
  /// materialized flag, the hot/cold representation (block granularity +
  /// probe layout), and the work EMA the tier selector resumes from.
  /// Call after the term's postings have been re-inserted; keeps the
  /// materialized/hot-term counters and ValidateTiers() coherent.
  void RestoreTermMeta(TermId term, bool materialized, bool hot,
                       double work_ema) {
    TermState& ts = Ensure(term);
    if (materialized) MarkMaterialized(ts);
    if (hot != ts.hot_tier) {
      ts.hot_tier = hot;
      hot_terms_ += hot ? 1 : std::size_t(-1);
      ts.list.SetBlockBits(hot ? tier_policy_.hot_block_bits
                               : InvertedList::kBlockBits);
      ts.tree.SetWideProbe(hot);
    }
    ts.work_ema = work_ema;
  }

  /// White-box tier-coherence check (ValidatePruningMetadata's second
  /// leg): every term's list granularity and tree probe layout must
  /// match its recorded tier.
  bool ValidateTiers() const {
    for (const TermState& ts : states_) {
      const std::size_t want_bits =
          ts.hot_tier ? tier_policy_.hot_block_bits : InvertedList::kBlockBits;
      if (ts.list.block_bits() != want_bits) return false;
      if (ts.tree.wide_probe() != ts.hot_tier) return false;
    }
    return true;
  }

  /// Number of terms with a materialized list (counting emptied ones).
  std::size_t materialized_lists() const { return materialized_; }

  /// Total postings across all lists.
  std::size_t total_postings() const { return total_postings_; }

  /// Slab length (terms the catalog has slots for).
  std::size_t term_count() const { return states_.size(); }

  // Memory-footprint gauges (DESIGN.md §7).
  /// Bytes reserved by the TermState slab itself.
  std::size_t slab_bytes() const {
    return states_.capacity() * sizeof(TermState);
  }
  /// Bytes held by live postings across all lists.
  std::size_t postings_bytes() const {
    return total_postings_ * sizeof(ImpactEntry);
  }

 private:
  void MarkMaterialized(TermState& ts) {
    if (!ts.list_materialized) {
      ts.list_materialized = true;
      ++materialized_;
    }
  }

  /// One flattened posting of a batch, sortable into per-term ImpactOrder
  /// runs for InsertOrdered/EraseOrdered.
  struct FlatPosting {
    TermId term = kInvalidTermId;
    ImpactEntry entry;
  };
  /// Forward iterator exposing the ImpactEntry of a FlatPosting run.
  struct EntryIterator {
    const FlatPosting* p = nullptr;
    const ImpactEntry& operator*() const { return p->entry; }
    EntryIterator& operator++() {
      ++p;
      return *this;
    }
    friend bool operator==(EntryIterator a, EntryIterator b) { return a.p == b.p; }
    friend bool operator!=(EntryIterator a, EntryIterator b) { return a.p != b.p; }
  };
  /// Flattens, sorts and applies the scratch postings via `apply(state,
  /// run_begin, run_end)` once per term group.
  template <typename Apply>
  std::size_t ForEachTermRun(Apply&& apply);

  std::vector<TermState> states_;  ///< the slab, indexed by TermId
  std::size_t materialized_ = 0;
  std::size_t total_postings_ = 0;
  std::vector<FlatPosting> batch_scratch_;

  TierPolicy tier_policy_;
  std::size_t hot_terms_ = 0;
  /// NoteTermWork records since the last ApplyTierMigrations (one entry
  /// per term per epoch — the collector touches each term's run once).
  std::vector<std::pair<TermId, std::size_t>> epoch_work_;
};

}  // namespace ita
