/// \file
/// The continuous text search server abstraction (Section II's system
/// model): documents stream in, registered queries stay active, and the
/// server keeps every query's exact top-k over the sliding window.
///
/// ContinuousSearchServer owns the machinery every strategy shares — the
/// window of valid documents (a stream::DocumentArena, owned or shared),
/// window-driven expiration, query registration bookkeeping, statistics,
/// result-change notification — and delegates the actual result
/// maintenance to subclasses:
///
///   * ItaServer    — the paper's Incremental Threshold Algorithm;
///   * NaiveServer  — the paper's comparator (Naive + Yi et al. top-k_max);
///   * OracleServer — brute-force ground truth for tests.
///
/// Servers are single-threaded and run on virtual time, per the paper's
/// main-memory, CPU-bound setting. ContinuousSearchServer also implements
/// the ServerStrategy seam (core/server_strategy.h): the public
/// Ingest/IngestBatch/AdvanceTime entry points are compositions of the
/// seam's epoch phases around its OWN arena, which lets exec::ShardedServer
/// embed a complete server per shard, own ONE arena for all of them, and
/// drive the phases itself (DESIGN.md §6, §8). A server constructed over a
/// shared arena never mutates it — its public stream mutators are disabled
/// and the embedding driver performs the pops/appends.

#pragma once

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"
#include "core/notifier.h"
#include "core/query.h"
#include "core/result_set.h"
#include "core/server_strategy.h"
#include "obs/epoch_trace.h"
#include "stream/document.h"
#include "stream/document_arena.h"
#include "stream/window.h"

/// The incremental-threshold continuous text search library: the paper's
/// system model (stream, window, queries) and every layer of this
/// reproduction, from text analysis to the sharded execution engine.
namespace ita {

/// Construction options shared by every server strategy.
struct ServerOptions {
  /// The sliding-window specification (count- or time-based).
  WindowSpec window = WindowSpec::CountBased(1000);
  /// When set, the server reads this externally owned arena instead of
  /// creating its own, and never mutates it: the embedding epoch driver
  /// (exec::ShardedServer) owns the window and drives the phases. The
  /// pointer must outlive the server. Null (the default) means the server
  /// owns a private arena and its public Ingest/IngestBatch/AdvanceTime
  /// mutators are live.
  DocumentArena* shared_arena = nullptr;
};

/// Base class of every sequential server strategy; see the file comment.
class ContinuousSearchServer : public ServerStrategy {
 public:
  /// Validates the window spec and binds the arena (owned unless
  /// `options.shared_arena` is set).
  explicit ContinuousSearchServer(ServerOptions options);
  ~ContinuousSearchServer() override = default;

  ContinuousSearchServer(const ContinuousSearchServer&) = delete;  ///< non-copyable
  ContinuousSearchServer& operator=(const ContinuousSearchServer&) =
      delete;  ///< non-copyable

  /// Installs a continuous query; its result is immediately computed over
  /// the current window contents. Returns the id used for Result()/
  /// UnregisterQuery(). The query must satisfy ValidateQuery().
  StatusOr<QueryId> RegisterQuery(Query query);

  /// ServerStrategy: installs `query` under a caller-chosen id (a sharded
  /// driver owns the global id sequence). Auto-assigned ids continue after
  /// the largest explicit id, so the two forms may be mixed.
  Status RegisterQueryWithId(QueryId id, Query query) override;

  /// Terminates a continuous query.
  Status UnregisterQuery(QueryId id) override;

  /// ServerStrategy: removes `id` and returns its definition, so a
  /// sharded driver can re-home the query at an epoch boundary
  /// (re-registration on the target recomputes the exact result over the
  /// current window). Works for every strategy built on this base.
  StatusOr<Query> ExtractQuery(QueryId id) override;

  /// ServerStrategy: primes this FRESHLY constructed shared-arena server
  /// for a window its driver already populated (live resharding,
  /// cross-shape restore): adopts `stream_clock` as the arrival watermark
  /// so batch-time validation continues from the driver's stream clock,
  /// then runs OnAdoptWindow so the strategy can rebuild per-document
  /// structures from the arena. FailedPrecondition on an owned-arena
  /// server or one that has already registered queries or seen an epoch.
  Status AdoptWindow(Timestamp stream_clock) override;

  /// Streams one document into the server: expires documents pushed out of
  /// the window, then processes the arrival. Arrival times must be
  /// non-decreasing. Returns the id assigned to the document. Requires an
  /// owned arena (CHECK-fails on a shared-arena embedded server — the
  /// driver streams there).
  StatusOr<DocId> Ingest(Document document);

  /// Streams a batch of documents as one epoch: every expiration the
  /// batch's arrivals force is processed first (one OnExpireBatch call),
  /// then the arrivals (one OnArriveBatch call), and result-listener
  /// notifications flush once at the end of the epoch instead of once per
  /// event. Arrival times must be non-decreasing across the batch and
  /// relative to previous ingests. Requires an owned arena.
  ///
  /// Semantically exact: after the call, every query's Result() equals
  /// what one-at-a-time Ingest of the same documents would produce. Only
  /// the notification cadence (per epoch, not per event) differs.
  ///
  /// Returns the ids assigned to the batch documents, in order. Every
  /// document receives an id — including "transient" ones whose lifetime
  /// falls entirely inside the epoch (possible when the batch alone
  /// overflows the window); those count as ingested-and-expired in the
  /// stats but are never shown to the strategy hooks, since their net
  /// effect on every result is nil.
  StatusOr<std::vector<DocId>> IngestBatch(std::vector<Document> batch);

  /// For time-based windows: advances the clock to `now`, expiring
  /// documents that fall out of the window, without an accompanying
  /// arrival. The expirations form one epoch (a single OnExpireBatch
  /// call). No-op for count-based windows. Requires an owned arena.
  Status AdvanceTime(Timestamp now);

  /// ServerStrategy epoch phases (core/server_strategy.h). IngestBatch is
  /// exactly PlanEpoch + arena pop + RunExpirePhase + arena append +
  /// RunArrivePhase + arena reclaim + notification flush; an external
  /// driver (exec::ShardedServer) runs the same protocol against its own
  /// shared arena with a cross-shard barrier between the phases and
  /// merges the flush.
  StatusOr<EpochPlan> PlanEpoch(
      const std::vector<Document>& batch) const override;
  /// ServerStrategy phase 1: one OnExpireBatch over the popped views.
  void RunExpirePhase(const EpochPlan& plan,
                      std::span<const DocumentView> expired) override;
  /// ServerStrategy phase 2: one OnArriveBatch over the appended views.
  void RunArrivePhase(const EpochPlan& plan,
                      std::span<const DocumentView> arrived) override;
  /// ServerStrategy: records changed queries for an external driver's
  /// merged notification flush (core/notifier.h).
  void SetChangeTracking(bool enabled) override {
    notifier_.SetTracking(enabled);
  }
  /// ServerStrategy: drains the changed-query marks, sorted and dedup'd.
  std::vector<QueryId> TakeChangedQueries() override {
    return notifier_.TakeChanged();
  }

  /// ServerStrategy: points span instrumentation at `recorder` (null
  /// disables). The embedding driver calls this; a standalone server gets
  /// its recorder from EnableTracing() instead.
  void SetPhaseRecorder(obs::PhaseRecorder* recorder) override {
    phase_recorder_ = recorder;
  }

  /// Turns on epoch phase tracing for this standalone server: creates an
  /// owned single-lane obs::EpochTrace keeping the last `capacity` epochs
  /// raw and wires the span instrumentation at it. Every subsequent
  /// Ingest/IngestBatch/AdvanceTime epoch is bracketed and drained.
  /// No-op in an ITA_OBS=OFF build (trace() stays null, spans compile to
  /// nothing). Embedded (shared-arena) servers are traced by their driver
  /// (exec::ShardedServer::EnableTracing), not here.
  void EnableTracing(std::size_t capacity = 256);

  /// The owned trace, null until EnableTracing() (and always null in an
  /// ITA_OBS=OFF build or on an embedded server traced by its driver).
  const obs::EpochTrace* trace() const { return trace_.get(); }
  /// Mutable owned trace (for Reset between measurement windows).
  obs::EpochTrace* mutable_trace() { return trace_.get(); }

  /// ServerStrategy: persists the shared base state — window config,
  /// query catalog, stats, and (when owned) the window arena — as the
  /// "server/core" and "server/arena" sections, then delegates to
  /// CheckpointStrategy for the subclass's own sections. Call only at an
  /// epoch boundary (DESIGN.md §13).
  Status Checkpoint(persist::SnapshotWriter& snapshot) const override;

  /// ServerStrategy: rebuilds state from a snapshot written by the same
  /// strategy over the same window spec and arena-ownership mode.
  /// Requires a freshly constructed server (no queries, empty window);
  /// FailedPrecondition otherwise, and typed errors (see
  /// persist/snapshot.h) on mismatched or corrupt input.
  Status Restore(const persist::SnapshotReader& snapshot) override;

  /// Snapshot of the current top-k result of a query, best first. Exact at
  /// every event boundary (for IngestBatch, the event is the whole epoch).
  ///
  /// NOTE: bind the return value to a named variable before iterating —
  /// `for (auto& e : *server.Result(id))` dangles (the temporary StatusOr
  /// is destroyed before the loop body runs; C++23's P2644 fixes the
  /// language trap, but this library targets C++20). StatusOr's accessors
  /// are ITA_LIFETIME_BOUND, so Clang rejects the dangling form at compile
  /// time; see tests/common/statusor_lifetime_test.cc for the safe
  /// patterns.
  StatusOr<std::vector<ResultEntry>> Result(QueryId id) const override;

  /// Registers a listener fired after each Ingest/AdvanceTime epoch, once
  /// per query whose top-k changed, in ascending QueryId order. Pass
  /// nullptr to remove.
  void SetResultListener(ResultListener listener) {
    notifier_.SetListener(std::move(listener));
  }

  /// Operation counters and memory gauges; see common/stats.h.
  const ServerStats& stats() const override { return stats_; }
  /// Zeroes every counter and gauge, then restores the live-population
  /// gauge (registered queries survive a stats reset).
  void ResetStats() override {
    stats_.Reset();
    stats_.registered_queries = queries_.size();
  }

  /// The construction options (window spec, arena sharing).
  const ServerOptions& options() const { return options_; }
  /// Read-only view of the valid documents (the window contents), oldest
  /// first — inspection hook for tools and tests.
  const DocumentArena& documents() const { return *arena_; }
  /// Number of valid documents in the window.
  std::size_t window_size() const override { return arena_->size(); }
  /// Arrival time of the newest ingested document (or the last
  /// AdvanceTime target).
  Timestamp last_arrival_time() const { return last_arrival_time_; }
  /// Number of registered continuous queries.
  std::size_t query_count() const override { return queries_.size(); }

 protected:
  // Strategy hooks. OnArrive runs with the document already in the
  // arena; OnExpire runs after the document has been popped (so rescans
  // see only still-valid documents) — the view stays readable for the
  // duration of the call.

  /// Installs strategy state for `query` (stored at a stable address) and
  /// computes its initial result over the current window contents.
  virtual Status OnRegisterQuery(QueryId id, const Query& query) = 0;
  /// Tears down the strategy state of query `id`.
  virtual Status OnUnregisterQuery(QueryId id) = 0;
  /// Processes one arriving document (already valid in the arena).
  virtual void OnArrive(const DocumentView& doc) = 0;
  /// Processes one expired document (already popped; view readable for
  /// the duration of the call).
  virtual void OnExpire(const DocumentView& doc) = 0;
  /// The exact top-k of query `id`, best first.
  virtual std::vector<ResultEntry> CurrentResult(QueryId id) const = 0;

  /// Epoch (batch) strategy hooks, called by the epoch phases. The view
  /// spans stay readable for the duration of the call. OnArriveBatch runs
  /// with every batch document already in the arena; OnExpireBatch runs
  /// after *all* of the epoch's expiring documents have been popped, so
  /// rescans see only documents that survive the epoch's expirations. The
  /// defaults delegate to the per-document hooks; subclasses override
  /// them to amortize index probes and result maintenance across the
  /// epoch. Overrides must be semantically exact: epoch-end results must
  /// equal per-document processing (see DESIGN.md §4).
  virtual void OnArriveBatch(std::span<const DocumentView> docs) {
    for (const DocumentView& doc : docs) OnArrive(doc);
  }
  /// Epoch counterpart of OnExpire; see OnArriveBatch.
  virtual void OnExpireBatch(std::span<const DocumentView> docs) {
    for (const DocumentView& doc : docs) OnExpire(doc);
  }

  /// Checkpoint hook: appends the subclass's own sections after the base
  /// sections. The default appends none (a strategy whose state is fully
  /// derivable from the base sections — Oracle, Naive — needs no code).
  virtual Status CheckpointStrategy(persist::SnapshotWriter& snapshot) const {
    (void)snapshot;
    return Status::OK();
  }

  /// AdoptWindow hook, called with the shared arena already populated by
  /// the driver and the watermark adopted. Strategies that keep derived
  /// per-document structures (ItaServer's inverted postings) rebuild them
  /// here so later expire phases find every posting they erase. The
  /// default derives nothing — correct for strategies whose epoch hooks
  /// recompute from the arena (Oracle, Naive).
  virtual Status OnAdoptWindow() { return Status::OK(); }

  /// Restore hook, called after the base class has restored the arena and
  /// re-emplaced the query catalog (WITHOUT running OnRegisterQuery). The
  /// default recomputes: it re-registers every query ascending by id,
  /// deriving fresh strategy state from the restored window — exact for
  /// strategies whose state is a pure function of (queries, window).
  /// ItaServer overrides it to restore its θ/τ/result state verbatim.
  virtual Status RestoreStrategy(const persist::SnapshotReader& snapshot);

  /// Subclasses flag queries whose top-k changed during the current event;
  /// the base class fires the listener afterwards.
  void MarkResultChanged(QueryId id);

  /// The registered query for `id`, which must exist.
  const Query& GetQuery(QueryId id) const;
  /// The window arena (shared or owned), read-only.
  const DocumentArena& store() const { return *arena_; }
  /// The stats instance subclasses bump on hot paths.
  ServerStats& mutable_stats() { return stats_; }
  /// The wired span recorder (null when telemetry is off) — strategy
  /// subclasses record their sub-spans through it (ITA_OBS_SUB_SPAN).
  obs::PhaseRecorder* phase_recorder() const { return phase_recorder_; }

 private:
  /// Shared tail of RegisterQuery/RegisterQueryWithId: emplaces the query
  /// and runs the strategy hook, rolling back on failure.
  Status InstallQuery(QueryId id, Query query);

  /// True when this server owns (and may mutate) its arena.
  bool owns_arena() const { return owned_arena_ != nullptr; }

  /// Per-event expiry: pops the oldest document and runs OnExpire on it.
  void ExpireOldest();
  void FlushNotifications();
  /// Copies the owned arena's segment/byte gauges into stats_ (no-op on
  /// shared arenas — the owning driver reports those).
  void RefreshArenaGauges();

  ServerOptions options_;
  std::unique_ptr<DocumentArena> owned_arena_;  ///< null in shared mode
  DocumentArena* arena_ = nullptr;              ///< owned or shared target
  std::unordered_map<QueryId, Query> queries_;
  QueryId next_query_id_ = 1;
  Timestamp last_arrival_time_ = 0;
  ServerStats stats_;
  ResultNotifier notifier_;
  obs::PhaseRecorder* phase_recorder_ = nullptr;  ///< null = spans off
  std::unique_ptr<obs::EpochTrace> trace_;        ///< EnableTracing() only
  /// Epoch scratch for the owned-arena drivers (Ingest/IngestBatch/
  /// AdvanceTime); capacity reused across epochs.
  std::vector<DocumentView> expired_scratch_;
  std::vector<DocumentView> arrived_scratch_;
};

/// Parses the query registry out of the "server/core" section written by
/// ContinuousSearchServer::Checkpoint, without constructing a server of
/// the snapshot's shape — the cross-shape restore seam: when
/// exec::ShardedServer restores a snapshot taken at a different shard
/// count, it reads each persisted shard's registry here and re-registers
/// the queries under the new placement. Returns (id, query) pairs sorted
/// ascending by id; the section's stats tail is ignored. Errors follow
/// the snapshot taxonomy: NotFound for a missing section, IoError for
/// truncation or a duplicate id, InvalidArgument for an invalid query.
StatusOr<std::vector<std::pair<QueryId, Query>>> ReadQueryRegistry(
    const persist::SnapshotReader& snapshot);

}  // namespace ita
