// The continuous text search server abstraction (Section II's system
// model): documents stream in, registered queries stay active, and the
// server keeps every query's exact top-k over the sliding window.
//
// ContinuousSearchServer owns the machinery every strategy shares — the
// FIFO list of valid documents, window-driven expiration, query
// registration bookkeeping, statistics, result-change notification — and
// delegates the actual result maintenance to subclasses:
//
//   * ItaServer    — the paper's Incremental Threshold Algorithm;
//   * NaiveServer  — the paper's comparator (Naive + Yi et al. top-k_max);
//   * OracleServer — brute-force ground truth for tests.
//
// Servers are single-threaded and run on virtual time, per the paper's
// main-memory, CPU-bound setting. ContinuousSearchServer also implements
// the ServerStrategy seam (core/server_strategy.h): the public
// Ingest/IngestBatch/AdvanceTime entry points are compositions of the
// seam's epoch phases, which lets exec::ShardedServer embed a complete
// server per shard and drive the phases itself (DESIGN.md §6).

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"
#include "core/notifier.h"
#include "core/query.h"
#include "core/result_set.h"
#include "core/server_strategy.h"
#include "index/document_store.h"
#include "stream/document.h"
#include "stream/window.h"

namespace ita {

struct ServerOptions {
  WindowSpec window = WindowSpec::CountBased(1000);
};

class ContinuousSearchServer : public ServerStrategy {
 public:
  explicit ContinuousSearchServer(ServerOptions options);
  ~ContinuousSearchServer() override = default;

  ContinuousSearchServer(const ContinuousSearchServer&) = delete;
  ContinuousSearchServer& operator=(const ContinuousSearchServer&) = delete;

  /// Installs a continuous query; its result is immediately computed over
  /// the current window contents. Returns the id used for Result()/
  /// UnregisterQuery(). The query must satisfy ValidateQuery().
  StatusOr<QueryId> RegisterQuery(Query query);

  /// ServerStrategy: installs `query` under a caller-chosen id (a sharded
  /// driver owns the global id sequence). Auto-assigned ids continue after
  /// the largest explicit id, so the two forms may be mixed.
  Status RegisterQueryWithId(QueryId id, Query query) override;

  /// Terminates a continuous query.
  Status UnregisterQuery(QueryId id) override;

  /// Streams one document into the server: expires documents pushed out of
  /// the window, then processes the arrival. Arrival times must be
  /// non-decreasing. Returns the id assigned to the document.
  StatusOr<DocId> Ingest(Document document);

  /// Streams a batch of documents as one epoch: every expiration the
  /// batch's arrivals force is processed first (one OnExpireBatch call),
  /// then the arrivals (one OnArriveBatch call), and result-listener
  /// notifications flush once at the end of the epoch instead of once per
  /// event. Arrival times must be non-decreasing across the batch and
  /// relative to previous ingests.
  ///
  /// Semantically exact: after the call, every query's Result() equals
  /// what one-at-a-time Ingest of the same documents would produce. Only
  /// the notification cadence (per epoch, not per event) differs.
  ///
  /// Returns the ids assigned to the batch documents, in order. Every
  /// document receives an id — including "transient" ones whose lifetime
  /// falls entirely inside the epoch (possible when the batch alone
  /// overflows the window); those count as ingested-and-expired in the
  /// stats but are never shown to the strategy hooks, since their net
  /// effect on every result is nil.
  StatusOr<std::vector<DocId>> IngestBatch(std::vector<Document> batch);

  /// For time-based windows: advances the clock to `now`, expiring
  /// documents that fall out of the window, without an accompanying
  /// arrival. The expirations form one epoch (a single OnExpireBatch
  /// call). No-op for count-based windows.
  Status AdvanceTime(Timestamp now);

  /// ServerStrategy epoch phases (core/server_strategy.h). IngestBatch is
  /// exactly PlanEpoch + RunExpirePhase + RunArrivePhase + notification
  /// flush; an external driver (exec::ShardedServer) runs the same phases
  /// itself with a cross-shard barrier in between and merges the flush.
  StatusOr<EpochPlan> PlanEpoch(
      const std::vector<Document>& batch) const override;
  void RunExpirePhase(const EpochPlan& plan) override;
  std::vector<DocId> RunArrivePhase(const EpochPlan& plan,
                                    std::vector<Document> batch) override;
  void SetChangeTracking(bool enabled) override {
    notifier_.SetTracking(enabled);
  }
  std::vector<QueryId> TakeChangedQueries() override {
    return notifier_.TakeChanged();
  }

  /// Snapshot of the current top-k result of a query, best first. Exact at
  /// every event boundary (for IngestBatch, the event is the whole epoch).
  ///
  /// NOTE: bind the return value to a named variable before iterating —
  /// `for (auto& e : *server.Result(id))` dangles (the temporary StatusOr
  /// is destroyed before the loop body runs; C++23's P2644 fixes the
  /// language trap, but this library targets C++20). StatusOr's accessors
  /// are ITA_LIFETIME_BOUND, so Clang rejects the dangling form at compile
  /// time; see tests/common/statusor_lifetime_test.cc for the safe
  /// patterns.
  StatusOr<std::vector<ResultEntry>> Result(QueryId id) const override;

  /// Registers a listener fired after each Ingest/AdvanceTime epoch, once
  /// per query whose top-k changed, in ascending QueryId order. Pass
  /// nullptr to remove.
  void SetResultListener(ResultListener listener) {
    notifier_.SetListener(std::move(listener));
  }

  const ServerStats& stats() const override { return stats_; }
  void ResetStats() override { stats_.Reset(); }

  const ServerOptions& options() const { return options_; }
  /// Read-only view of the valid documents (the window contents), oldest
  /// first — inspection hook for tools and tests.
  const DocumentStore& documents() const { return store_; }
  std::size_t window_size() const override { return store_.size(); }
  Timestamp last_arrival_time() const { return last_arrival_time_; }
  std::size_t query_count() const override { return queries_.size(); }

 protected:
  /// Strategy hooks. OnArrive runs with the document already in the store;
  /// OnExpire runs after the document has left the store (so rescans see
  /// only still-valid documents) — the reference stays valid for the
  /// duration of the call.
  virtual Status OnRegisterQuery(QueryId id, const Query& query) = 0;
  virtual Status OnUnregisterQuery(QueryId id) = 0;
  virtual void OnArrive(const Document& doc) = 0;
  virtual void OnExpire(const Document& doc) = 0;
  virtual std::vector<ResultEntry> CurrentResult(QueryId id) const = 0;

  /// Epoch (batch) strategy hooks, called by IngestBatch/AdvanceTime.
  /// OnArriveBatch runs with every batch document already in the store
  /// (pointers stay valid for the duration of the call); OnExpireBatch
  /// runs after *all* of the epoch's expiring documents have left the
  /// store, so rescans see only documents that survive the epoch's
  /// expirations. The defaults delegate to the per-document hooks;
  /// subclasses override them to amortize index probes and result
  /// maintenance across the epoch. Overrides must be semantically exact:
  /// epoch-end results must equal per-document processing (see
  /// DESIGN.md §4).
  virtual void OnArriveBatch(const std::vector<const Document*>& docs) {
    for (const Document* doc : docs) OnArrive(*doc);
  }
  virtual void OnExpireBatch(const std::vector<Document>& docs) {
    for (const Document& doc : docs) OnExpire(doc);
  }

  /// Subclasses flag queries whose top-k changed during the current event;
  /// the base class fires the listener afterwards.
  void MarkResultChanged(QueryId id);

  const Query& GetQuery(QueryId id) const;
  const DocumentStore& store() const { return store_; }
  ServerStats& mutable_stats() { return stats_; }

 private:
  /// Shared tail of RegisterQuery/RegisterQueryWithId: emplaces the query
  /// and runs the strategy hook, rolling back on failure.
  Status InstallQuery(QueryId id, Query query);

  void ExpireOldest();
  void FlushNotifications();

  ServerOptions options_;
  DocumentStore store_;
  std::unordered_map<QueryId, Query> queries_;
  QueryId next_query_id_ = 1;
  Timestamp last_arrival_time_ = 0;
  ServerStats stats_;
  ResultNotifier notifier_;
};

}  // namespace ita
