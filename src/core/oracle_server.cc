#include "core/oracle_server.h"

#include "common/logging.h"
#include "container/bounded_heap.h"
#include "core/result_set.h"

namespace ita {

Status OracleServer::OnRegisterQuery(QueryId id, const Query& query) {
  registered_.emplace(id, &query);
  return Status::OK();
}

Status OracleServer::OnUnregisterQuery(QueryId id) {
  registered_.erase(id);
  return Status::OK();
}

void OracleServer::OnArrive(const DocumentView& doc) { (void)doc; }

void OracleServer::OnExpire(const DocumentView& doc) { (void)doc; }

std::vector<ResultEntry> OracleServer::CurrentResult(QueryId id) const {
  const auto it = registered_.find(id);
  ITA_CHECK(it != registered_.end());
  const Query& query = *it->second;

  struct RanksBefore {
    bool operator()(const ResultEntry& a, const ResultEntry& b) const {
      if (a.score != b.score) return a.score > b.score;
      return a.doc > b.doc;  // ties: newest first, matching ResultSet
    }
  };
  BoundedTopK<ResultEntry, RanksBefore> heap(static_cast<std::size_t>(query.k));
  for (const DocumentView doc : store()) {
    const double score = ScoreDocument(doc.composition, query.terms);
    if (score <= 0.0) continue;  // only nonzero-similarity documents count
    heap.Push(ResultEntry{doc.id, score});
  }
  return heap.TakeSorted();
}

}  // namespace ita
