/// \file
/// The maintained result list R of one continuous query (Section III).
///
/// R holds every *encountered* document with its exact score — the top-k
/// prefix is the reported answer; the remainder ("unverified" documents in
/// the paper's terminology) is what makes incremental refill possible after
/// expirations. Ordered by decreasing score (ties: newest document first)
/// with O(log n) insert/erase and O(1) membership/score lookup.

#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "container/skip_list.h"

namespace ita {

/// One reported result: a valid document and its similarity score.
struct ResultEntry {
  DocId doc = kInvalidDocId;  ///< the document's stream id
  double score = 0.0;         ///< exact similarity S(d|Q)

  /// Field-wise equality (used by the equivalence test suites).
  friend bool operator==(const ResultEntry& a, const ResultEntry& b) {
    return a.doc == b.doc && a.score == b.score;
  }
};

/// The maintained result list R of one continuous query; see the file
/// comment. Not thread-safe: owned by a single server's query state.
class ResultSet {
 public:
  /// One scored member of R, as stored in the ranked list.
  struct Entry {
    double score = 0.0;         ///< exact similarity S(d|Q)
    DocId doc = kInvalidDocId;  ///< the document's stream id
  };
  /// Decreasing score; ties broken by decreasing doc id (newest first).
  struct Order {
    /// True when `a` ranks before `b`.
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.score != b.score) return a.score > b.score;
      return a.doc > b.doc;
    }
  };
  /// The ranked backing list.
  using List = SkipList<Entry, Order>;
  /// Forward iterator over the ranked list, best first.
  using Iterator = List::Iterator;

  /// Number of documents in R.
  std::size_t size() const { return by_doc_.size(); }
  /// True when R holds no documents.
  bool empty() const { return by_doc_.empty(); }

  /// Adds document `doc` with `score`. Must not already be present.
  void Insert(DocId doc, double score);

  /// Removes `doc`; returns false if absent.
  bool Erase(DocId doc);

  /// True when `doc` is a member of R.
  bool Contains(DocId doc) const { return by_doc_.find(doc) != by_doc_.end(); }

  /// Exact stored score, if present.
  std::optional<double> ScoreOf(DocId doc) const;

  /// Score of the k-th best document, S_k — the bar an arriving/expiring
  /// document must reach to affect the top-k result. Returns 0 when fewer
  /// than k documents are present (only zero-similarity documents are
  /// missing from R at that point).
  double KthScore(std::size_t k) const;

  /// Top-min(k, size) entries, best first.
  std::vector<ResultEntry> TopK(std::size_t k) const;

  /// True when `doc` is within the top-k prefix (score above, or tied-and-
  /// newer than, the k-th best).
  bool InTopK(DocId doc, std::size_t k) const;

  /// The lowest-ranked entry (worst score, oldest among ties), if any.
  std::optional<Entry> Worst() const {
    if (by_doc_.empty()) return std::nullopt;
    return *by_score_.Back();
  }

  /// Iteration over R, best first.
  Iterator begin() const { return by_score_.begin(); }
  /// Past-the-end iterator of begin().
  Iterator end() const { return by_score_.end(); }

  /// Removes every document.
  void Clear();

 private:
  List by_score_;
  std::unordered_map<DocId, double> by_doc_;
};

}  // namespace ita
