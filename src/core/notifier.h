/// \file
/// Result-change notification, shared by every epoch driver: queries whose
/// top-k changed are marked (dedup'd) during an event or epoch, and one
/// Flush implementation fires the listener once per changed query at the
/// epoch boundary. Both the sequential ContinuousSearchServer and the
/// sharded execution engine (exec::ShardedServer) flush through this class,
/// so the notification contract — at most one callback per query per
/// epoch, ascending QueryId order, epoch-final result — has exactly one
/// implementation.

#pragma once

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "common/types.h"
#include "core/result_set.h"

namespace ita {

/// Invoked after an ingest/advance epoch completes, once per query whose
/// top-k result changed during that epoch.
using ResultListener =
    std::function<void(QueryId, const std::vector<ResultEntry>&)>;

/// The one mark-and-flush implementation behind every epoch driver's
/// result notifications; see the file comment for the contract. Not
/// thread-safe: owned by a single driver, called on its thread only.
class ResultNotifier {
 public:
  /// Installs the listener fired by Flush(). Pass nullptr to remove.
  void SetListener(ResultListener listener) { listener_ = std::move(listener); }
  /// True while a listener is installed.
  bool has_listener() const { return listener_ != nullptr; }

  /// When enabled, Mark() records changes even while no listener is
  /// installed, so an external driver can TakeChanged() and merge them —
  /// the sharded engine toggles this on its embedded per-shard servers
  /// (on while it has a listener) and flushes the merged set through its
  /// own notifier. Disabling discards marks nobody would observe.
  void SetTracking(bool enabled) {
    tracking_ = enabled;
    if (!tracking_ && listener_ == nullptr) marked_.clear();
  }

  /// Records that `id`'s top-k changed. No-op unless a listener is
  /// installed or tracking is enabled (nobody would observe the mark).
  void Mark(QueryId id) {
    if (tracking_ || listener_ != nullptr) marked_.push_back(id);
  }

  /// Mark() for every id in `ids`.
  void MarkAll(const std::vector<QueryId>& ids) {
    for (const QueryId id : ids) Mark(id);
  }

  /// Discards pending marks for `id` — called when a query is
  /// unregistered, so a flush never tries to resolve a dead query (a
  /// query can be marked at registration, e.g. by Naive's initial refill,
  /// and terminated before the next epoch flushes).
  void Unmark(QueryId id) {
    marked_.erase(std::remove(marked_.begin(), marked_.end(), id),
                  marked_.end());
  }

  /// Drains the marks accumulated since the last drain: sorted ascending,
  /// duplicates removed.
  std::vector<QueryId> TakeChanged() {
    std::sort(marked_.begin(), marked_.end());
    marked_.erase(std::unique(marked_.begin(), marked_.end()), marked_.end());
    return std::exchange(marked_, {});
  }

  /// The one flush implementation: drains the marked queries and fires the
  /// listener for each, in ascending QueryId order, with `resolve(id)`'s
  /// (epoch-final) result. Without a listener, marks are discarded only
  /// when tracking is off too — a tracking driver may drive the public
  /// ingest paths (which flush) and still expect TakeChanged() to work.
  template <typename Resolve>
  void Flush(Resolve&& resolve) {
    if (listener_ == nullptr) {
      if (!tracking_) marked_.clear();
      return;
    }
    for (const QueryId id : TakeChanged()) listener_(id, resolve(id));
  }

 private:
  ResultListener listener_;
  bool tracking_ = false;
  std::vector<QueryId> marked_;  ///< dedup'd at TakeChanged()
};

}  // namespace ita
