#include "core/result_set.h"

#include "common/logging.h"

namespace ita {

void ResultSet::Insert(DocId doc, double score) {
  const auto [it, inserted] = by_doc_.emplace(doc, score);
  (void)it;
  ITA_CHECK(inserted) << "document " << doc << " already in result set";
  const auto [pos, fresh] = by_score_.Insert(Entry{score, doc});
  (void)pos;
  ITA_DCHECK(fresh);
}

bool ResultSet::Erase(DocId doc) {
  const auto it = by_doc_.find(doc);
  if (it == by_doc_.end()) return false;
  const bool erased = by_score_.Erase(Entry{it->second, doc});
  ITA_DCHECK(erased);
  (void)erased;
  by_doc_.erase(it);
  return true;
}

std::optional<double> ResultSet::ScoreOf(DocId doc) const {
  const auto it = by_doc_.find(doc);
  if (it == by_doc_.end()) return std::nullopt;
  return it->second;
}

double ResultSet::KthScore(std::size_t k) const {
  if (k == 0) return 0.0;
  if (by_doc_.size() < k) return 0.0;
  auto it = by_score_.begin();
  for (std::size_t i = 1; i < k; ++i) ++it;
  return it->score;
}

std::vector<ResultEntry> ResultSet::TopK(std::size_t k) const {
  std::vector<ResultEntry> out;
  out.reserve(k < by_doc_.size() ? k : by_doc_.size());
  auto it = by_score_.begin();
  for (std::size_t i = 0; i < k && it != by_score_.end(); ++i, ++it) {
    out.push_back(ResultEntry{it->doc, it->score});
  }
  return out;
}

bool ResultSet::InTopK(DocId doc, std::size_t k) const {
  const auto stored = ScoreOf(doc);
  if (!stored.has_value()) return false;
  auto it = by_score_.begin();
  for (std::size_t i = 0; i < k && it != by_score_.end(); ++i, ++it) {
    if (it->doc == doc) return true;
  }
  return false;
}

void ResultSet::Clear() {
  by_score_.Clear();
  by_doc_.clear();
}

}  // namespace ita
