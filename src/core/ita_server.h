/// \file
/// The Incremental Threshold Algorithm (Section III of Mouratidis & Pang,
/// ICDE 2009).
///
/// Data structures (Figure 1, reorganized per DESIGN.md §7/§8): the valid
/// documents live in the window arena (owned by the base class or shared
/// by an embedding driver); on top of them ItaServer maintains a unified
/// per-term catalog — one colocated TermState per dense TermId holding the
/// term's impact-ordered inverted list AND its flat threshold tree — plus
/// a slab-allocated SlotMap of per-query states. Threshold-tree entries
/// carry SlotMap slots, so a probe hit resolves to its QueryState with one
/// indexed slab access; no hash lookup sits on the event path.
///
/// Invariants maintained for every query Q (DESIGN.md §2):
///   I1  R(Q) = { valid d : exists t in Q with w_{d,t} >= theta_{Q,t} },
///       every member with its exact score S(d|Q);
///   I2  tau(Q) = sum_t w_{Q,t} * theta_{Q,t} <= S_k(Q) whenever R holds at
///       least k documents (tau = 0 when the query's lists are exhausted).
/// Under I1+I2 any valid document outside R scores strictly below tau <=
/// S_k, so the top-k prefix of R is the exact query answer at all times.
///
/// Event processing:
///   * arrival  — insert postings; probe the threshold trees of the
///     document's terms for queries with theta <= w_{d,t}; score and add
///     the document to their R; when S_k rises, roll local thresholds up
///     (shrinking the monitored region) while tau stays <= S_k;
///   * expiry   — delete postings; probe the same trees; drop the document
///     from each affected R; if it was in a top-k, resume the threshold
///     search downward from the current thresholds until I2 holds again.
///
/// Epoch hooks additionally defer every theta move to a bulk per-term
/// retheta pass: instead of an Erase+Insert tree pair per (query, term)
/// move, the epoch's moves are collected and each touched tree applies
/// them as ONE erase-compaction + merge pass (FlatThresholdTree::
/// ApplyMoves). Trees are only probed at epoch boundaries, so deferring
/// their updates to the end of the hook is invisible to every reader.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "container/slot_map.h"
#include "core/result_set.h"
#include "core/server.h"
#include "core/term_catalog.h"
#include "core/threshold_tree.h"
#include "obs/top_k_sketch.h"

namespace ita {

/// Tuning knobs for ItaServer, used by the ablation benches.
struct ItaTuning {
  /// Disable to ablate the threshold roll-up of Section III-B (bench A3):
  /// local thresholds then only ever move downward, monitored regions only
  /// grow, and more arrivals/expirations must be processed per query.
  bool enable_rollup = true;
  /// Frequency-adaptive term-tier policy (DESIGN.md §12): hot terms —
  /// selected by an EMA of per-epoch term work — migrate to a denser
  /// block-max layout and a wide threshold-tree probe at epoch
  /// boundaries. Representation-only: results stay bit-identical.
  TierPolicy tier;
};

/// The paper's Incremental Threshold Algorithm as a server strategy; see
/// the file comment for the structures and invariants. Single-threaded
/// like every server in this library: one thread at a time may call the
/// public API, and an embedding driver never runs two phases of the same
/// instance concurrently (core/server_strategy.h).
class ItaServer : public ContinuousSearchServer {
 public:
  /// Builds an ITA server over `options` (window spec, optional shared
  /// arena) with the given tuning.
  explicit ItaServer(ServerOptions options, ItaTuning tuning = {})
      : ContinuousSearchServer(options), tuning_(tuning) {
    catalog_.SetTierPolicy(tuning_.tier);
  }

  /// ServerStrategy: the strategy name, "ita".
  std::string name() const override { return "ita"; }

  /// The unified per-term catalog (inverted lists + threshold trees) —
  /// inspection hook for tools and tests.
  const TermCatalog& catalog() const { return catalog_; }

  /// The current influence threshold tau(Q) — exposed for tests and for
  /// the invariant checker.
  StatusOr<double> InfluenceThreshold(QueryId id) const;

  /// The current local threshold theta_{Q,t}; OutOfRange if t not in Q.
  StatusOr<double> LocalThreshold(QueryId id, TermId term) const;

  /// Full candidate list R (verified + unverified), best first — test and
  /// debugging hook; the public answer is Result(id).
  StatusOr<std::vector<ResultEntry>> Candidates(QueryId id) const;

  /// Validates the pruning metadata of every term state (DESIGN.md §10):
  /// each threshold tree's cached MinTheta() must equal its front theta
  /// (+infinity when empty), and each inverted list's block-max array
  /// must mirror its block heads. White-box hook for the sim invariant
  /// checker (soak tier) and the property tests; the event path relies on
  /// both caches to skip work, so a violation here means a probe or
  /// boundary search may silently miss entries.
  Status ValidatePruningMetadata() const;

  /// Slots the query-state slab holds (occupied + reusable) — exposed so
  /// churn tests can assert free-list reuse bounds the slab.
  std::size_t query_state_slots() const { return states_.slot_count(); }

  /// Turns on hot-term load tracking: a space-saving top-K sketch
  /// (obs/top_k_sketch.h) accumulating, per TermId, the postings plus
  /// threshold-probe steps each epoch spent on the term — the load signal
  /// the frequency-adaptive indexing work needs. Tracked on the BATCH
  /// path only (one sketch update per term-run, off the per-posting hot
  /// loop); the per-event Ingest path does not feed it. No-op in an
  /// ITA_OBS=OFF build.
  void EnableHotTermTracking(std::size_t capacity = 64);

  /// The hot-term sketch, null until EnableHotTermTracking() (and always
  /// null in an ITA_OBS=OFF build).
  const obs::SpaceSavingSketch* hot_terms() const { return hot_terms_.get(); }

  /// ServerStrategy: the most work-expensive queries since the last drain
  /// (descending accumulated work, ties ascending id, at most `max`), the
  /// sharded rebalancer's victim-selection signal. Every query's
  /// accounting halves on drain so stale hotness fades.
  void DrainTopWorkQueries(
      std::size_t max,
      std::vector<std::pair<QueryId, std::uint64_t>>& out) override;

 protected:
  /// Registers threshold-tree entries for the query's terms and runs the
  /// initial top-k threshold search (Section III-A).
  Status OnRegisterQuery(QueryId id, const Query& query) override;
  /// Removes the query's tree entries and releases its state slot.
  Status OnUnregisterQuery(QueryId id) override;
  /// Per-event arrival processing (Section III-B).
  void OnArrive(const DocumentView& doc) override;
  /// Per-event expiration processing (Section III-B).
  void OnExpire(const DocumentView& doc) override;

  /// Epoch-amortized event processing (DESIGN.md §4). Both hooks bucket
  /// the batch's postings per term, fetch each term's TermState ONCE for
  /// both the bulk list maintenance and the single tree probe (with the
  /// bucket's maximum weight), and run the expensive per-query machinery
  /// (RollUp after arrivals, ExtendSearch refill after expirations) once
  /// per affected query per epoch instead of once per event; the theta
  /// moves those produce flush through the bulk retheta pass. Semantically
  /// exact: candidate filtering uses the exact per-query local thresholds,
  /// and I1/I2 are restored before the hook returns.
  void OnArriveBatch(std::span<const DocumentView> docs) override;
  /// ItaServer MUST override OnExpireBatch (not merely for speed): the
  /// epoch driver pops every expiring document from the arena before the
  /// call, so the per-document OnExpire loop could refill from postings of
  /// a doomed-but-not-yet-unindexed document. The override unindexes the
  /// whole batch up front.
  void OnExpireBatch(std::span<const DocumentView> docs) override;

  /// The top-k prefix of R(Q), the exact answer.
  std::vector<ResultEntry> CurrentResult(QueryId id) const override;

  /// Persists the ITA-specific state as the "ita/state" section: the
  /// retheta epoch, per-term tier metadata, the exact query-state slab
  /// layout (occupied slots with θ/θ-epoch/τ/work/R, plus the free list
  /// in recycling order). Inverted lists and threshold trees are NOT
  /// serialized — they are pure functions of (arena, θ vectors) and are
  /// rebuilt deterministically on restore (DESIGN.md §13).
  Status CheckpointStrategy(persist::SnapshotWriter& snapshot) const override;
  /// Exact-state restore: reinstates tier metadata, rebuilds the inverted
  /// lists from the restored arena, reproduces the slab layout (including
  /// LIFO free-list order), and re-registers every θ in its term's tree —
  /// no threshold search runs, so θ/τ/R come back verbatim.
  Status RestoreStrategy(const persist::SnapshotReader& snapshot) override;

  /// AdoptWindow hook (live resharding, cross-shape restore): rebuilds
  /// the inverted lists from the already-populated shared arena — the
  /// same content-determined re-insertion RestoreStrategy performs — so
  /// the initial top-k searches of subsequently registered queries and
  /// every later expire phase find the postings they expect. Threshold
  /// trees stay empty: entries appear per query at registration.
  Status OnAdoptWindow() override;

 private:
  /// == SlotMap<QueryState>::SlotIndex (spelled concretely so the alias
  /// does not force instantiation against the incomplete QueryState).
  using SlotIndex = std::uint32_t;

  struct QueryState {
    QueryId id = kInvalidQueryId;
    SlotIndex slot = 0;            ///< this state's own slab slot
    const Query* query = nullptr;  // owned by the base class; node-stable
    ResultSet result;
    /// Local thresholds, parallel to query->terms. +infinity = nothing
    /// read yet (registration only); 0 = list exhausted (fully monitored).
    std::vector<double> theta;
    /// Bulk-retheta bookkeeping, parallel to theta: the retheta epoch in
    /// which theta[i] last started moving (so one epoch records one old
    /// tree position per moved threshold, however many times it moves).
    std::vector<std::uint64_t> theta_epoch;
    /// Cached tau = sum_t w_{Q,t} * theta_t; finite once registered.
    double tau = 0.0;
    /// Accumulated epoch work attributed to this query (probe hits plus
    /// scoring/read/roll-up steps its processing drove) since the last
    /// DrainTopWorkQueries — the rebalancer's victim-selection signal.
    /// Halved at every drain so stale hotness fades.
    std::uint64_t work = 0;
  };

  /// Shared per-event front half of OnArrive/OnExpire: for each term of
  /// `doc`, `term_op(tw)` performs the posting maintenance against the
  /// term's colocated state and returns it (one slab access serves both
  /// the posting op and the tree probe performed here); every distinct
  /// affected query is then dispatched to `process(state)`.
  template <typename TermOp, typename Process>
  void ProcessEventFused(const DocumentView& doc, TermOp&& term_op,
                         Process&& process);

  /// Arrival handling for one affected query (Section III-B).
  void ProcessArrival(QueryState& state, const DocumentView& doc);

  /// Expiration handling for one affected query (Section III-B).
  void ProcessExpiry(QueryState& state, const DocumentView& doc);

  /// The unified threshold search: used for the initial top-k computation
  /// (Section III-A) and, because R keeps the unverified documents, for
  /// the incremental refill after expirations. Reads inverted lists
  /// downward from the current local thresholds — favoring the list with
  /// the highest w_{Q,t} * c_t — until S_k >= tau or all lists are
  /// exhausted. Finalizes thresholds at the last-read weights, draining
  /// boundary tie runs so I1 holds exactly.
  void ExtendSearch(QueryState& state);

  /// The roll-up of Section III-B: while tau can rise without exceeding
  /// S_k, lift the local threshold of the list with the smallest
  /// w_{Q,t} * c_t to the next distinct weight above it, evicting from R
  /// the documents that fall below all local thresholds.
  void RollUp(QueryState& state);

  /// Scores `doc` against `state` and adds it to R (it must be absent).
  void ScoreIntoResult(QueryState& state, const DocumentView& doc);

  /// Moves theta[i] to `new_theta`. Outside an epoch the threshold-tree
  /// entry moves immediately (one binary search + rotate); inside one the
  /// move is recorded for the bulk retheta flush and only the state
  /// vector changes (trees are not probed until the next epoch).
  void SetTheta(QueryState& state, std::size_t i, double new_theta);

  /// Brackets an epoch hook's per-query phase: every SetTheta in between
  /// is deferred, then FlushBulkRetheta applies each touched tree's moves
  /// as one ApplyMoves pass.
  void BeginBulkRetheta();
  void FlushBulkRetheta();

  /// The current local threshold of `term` in `state`; the term must be
  /// part of the query.
  double ThetaOf(const QueryState& state, TermId term) const;

  /// Writes the current structure sizes into the stats gauges (DESIGN.md
  /// §7) — called at every event/epoch boundary.
  void RefreshMemoryGauges();

  /// Folds the epoch's NoteTermWork records into the catalog's tier EMAs
  /// and executes any due tier migrations (DESIGN.md §12) — called at the
  /// tail of each batch hook, after the bulk retheta flush, when nothing
  /// holds list iterators or is mid-probe.
  void ApplyEpochTierMigrations();

  /// Shared batch-hook front half: flattens one posting per (document,
  /// term) of the batch and sorts it ONCE into per-term ImpactOrder runs.
  /// For each run the term's TermState is fetched ONCE; `run_op(ts,
  /// first, last)` applies the bulk index insert/erase against it, and
  /// the same state's tree is probed once with the run's max weight,
  /// emitting one (slot, posting index) pair per posting that clears the
  /// query's local threshold for that term. Pairs come out sorted by
  /// (slot, epoch position) with duplicates removed, ready for grouped
  /// per-query processing.
  template <typename RunOp>
  void CollectBatchAffected(std::span<const DocumentView> docs,
                            RunOp&& run_op);

  ItaTuning tuning_;
  /// Colocated per-term state: inverted list + flat threshold tree in one
  /// slab indexed by TermId (DESIGN.md §7).
  TermCatalog catalog_;
  /// Slab-allocated query states; threshold trees and the batch scratch
  /// below address them by slot. Slots are recycled under query churn.
  SlotMap<QueryState> states_;
  /// Cold-path directory QueryId -> slot (registration, unregistration,
  /// result lookups); never consulted by event processing.
  std::unordered_map<QueryId, SlotIndex> slot_of_;
  /// (theta, query) pairs across all trees == sum of registered query
  /// sizes — maintained here because trees are mutated through TermState.
  std::size_t threshold_entries_ = 0;
  std::vector<SlotIndex> probe_scratch_;

  // Bulk retheta scratch (see SetTheta).
  struct PendingTheta {
    TermId term = kInvalidTermId;
    SlotIndex slot = 0;
    std::uint32_t term_index = 0;  ///< position in query->terms / theta
    double old_theta = 0.0;        ///< tree entry at epoch start
  };
  bool bulk_retheta_active_ = false;
  std::uint64_t retheta_epoch_ = 0;
  std::vector<PendingTheta> pending_theta_;
  std::vector<FlatThresholdTree::ThetaMove> move_scratch_;

  // Batch (epoch) scratch, reused across IngestBatch calls. Postings
  // radix-scatter into the buckets below keyed by the term's low bits
  // (same term -> same bucket), and only each small bucket gets sorted —
  // never the epoch's full posting set.
  struct BatchPosting {
    double weight = 0.0;
    DocId doc = kInvalidDocId;
    TermId term = kInvalidTermId;
    std::uint32_t doc_index = 0;  ///< position in the epoch's doc sequence
  };
  /// Forward iterator presenting a grouped posting run as ImpactEntries —
  /// the shape the catalog's run primitives consume.
  struct BatchRunIterator {
    const BatchPosting* p = nullptr;
    ImpactEntry operator*() const { return ImpactEntry{p->weight, p->doc}; }
    BatchRunIterator& operator++() {
      ++p;
      return *this;
    }
    friend bool operator==(BatchRunIterator a, BatchRunIterator b) {
      return a.p == b.p;
    }
    friend bool operator!=(BatchRunIterator a, BatchRunIterator b) {
      return a.p != b.p;
    }
  };
  std::vector<BatchPosting> batch_postings_;  ///< grouped per term after scatter
  /// Radix-bucket scratch: postings scatter into 2^k buckets keyed by the
  /// term's low bits (same term -> same bucket), then each small bucket is
  /// sorted by (term, ImpactOrder), which makes term runs contiguous. The
  /// histogram stays L1-resident, unlike any dictionary-sized table.
  std::vector<std::uint32_t> bucket_start_;
  std::vector<std::uint32_t> bucket_cursor_;
  std::vector<std::pair<SlotIndex, std::uint32_t>> batch_affected_;

  /// Hot-term load sketch, null unless EnableHotTermTracking() was called
  /// (fed once per term-run in CollectBatchAffected).
  std::unique_ptr<obs::SpaceSavingSketch> hot_terms_;
};

}  // namespace ita
