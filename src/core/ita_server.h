// The Incremental Threshold Algorithm (Section III of Mouratidis & Pang,
// ICDE 2009).
//
// Data structures (Figure 1): the valid documents live in the base class's
// FIFO store; on top of them ItaServer maintains an impact-ordered
// inverted index, and for every inverted list a threshold tree holding the
// local thresholds theta_{Q,t} of the registered queries.
//
// Invariants maintained for every query Q (DESIGN.md §2):
//   I1  R(Q) = { valid d : exists t in Q with w_{d,t} >= theta_{Q,t} },
//       every member with its exact score S(d|Q);
//   I2  tau(Q) = sum_t w_{Q,t} * theta_{Q,t} <= S_k(Q) whenever R holds at
//       least k documents (tau = 0 when the query's lists are exhausted).
// Under I1+I2 any valid document outside R scores strictly below tau <=
// S_k, so the top-k prefix of R is the exact query answer at all times.
//
// Event processing:
//   * arrival  — insert postings; probe the threshold trees of the
//     document's terms for queries with theta <= w_{d,t}; score and add
//     the document to their R; when S_k rises, roll local thresholds up
//     (shrinking the monitored region) while tau stays <= S_k;
//   * expiry   — delete postings; probe the same trees; drop the document
//     from each affected R; if it was in a top-k, resume the threshold
//     search downward from the current thresholds until I2 holds again.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/result_set.h"
#include "core/server.h"
#include "core/threshold_tree.h"
#include "index/inverted_index.h"

namespace ita {

struct ItaTuning {
  /// Disable to ablate the threshold roll-up of Section III-B (bench A3):
  /// local thresholds then only ever move downward, monitored regions only
  /// grow, and more arrivals/expirations must be processed per query.
  bool enable_rollup = true;
};

class ItaServer : public ContinuousSearchServer {
 public:
  explicit ItaServer(ServerOptions options, ItaTuning tuning = {})
      : ContinuousSearchServer(options), tuning_(tuning) {}

  std::string name() const override { return "ita"; }

  const InvertedIndex& index() const { return index_; }

  /// The current influence threshold tau(Q) — exposed for tests and for
  /// the invariant checker.
  StatusOr<double> InfluenceThreshold(QueryId id) const;

  /// The current local threshold theta_{Q,t}; OutOfRange if t not in Q.
  StatusOr<double> LocalThreshold(QueryId id, TermId term) const;

  /// Full candidate list R (verified + unverified), best first — test and
  /// debugging hook; the public answer is Result(id).
  StatusOr<std::vector<ResultEntry>> Candidates(QueryId id) const;

 protected:
  Status OnRegisterQuery(QueryId id, const Query& query) override;
  Status OnUnregisterQuery(QueryId id) override;
  void OnArrive(const Document& doc) override;
  void OnExpire(const Document& doc) override;

  /// Epoch-amortized event processing (DESIGN.md §4). Both hooks bucket
  /// the batch's postings per term, probe each term's threshold tree ONCE
  /// with the bucket's maximum weight (instead of once per document), and
  /// run the expensive per-query machinery (RollUp after arrivals,
  /// ExtendSearch refill after expirations) once per affected query per
  /// epoch instead of once per event. Semantically exact: candidate
  /// filtering uses the exact per-query local thresholds, and I1/I2 are
  /// restored before the hook returns.
  ///
  /// ItaServer MUST override OnExpireBatch (not merely for speed): the
  /// base class removes every expiring document from the store before the
  /// call, so the per-document OnExpire loop could refill from postings of
  /// a doomed-but-not-yet-unindexed document. The override unindexes the
  /// whole batch up front.
  void OnArriveBatch(const std::vector<const Document*>& docs) override;
  void OnExpireBatch(const std::vector<Document>& docs) override;

  std::vector<ResultEntry> CurrentResult(QueryId id) const override;

 private:
  struct QueryState {
    QueryId id = kInvalidQueryId;
    const Query* query = nullptr;  // owned by the base class; node-stable
    ResultSet result;
    /// Local thresholds, parallel to query->terms. +infinity = nothing
    /// read yet (registration only); 0 = list exhausted (fully monitored).
    std::vector<double> theta;
    /// Cached tau = sum_t w_{Q,t} * theta_t; finite once registered.
    double tau = 0.0;
  };

  /// Probes the threshold trees of the document's terms and returns the
  /// distinct queries with theta_{Q,t} <= w_{d,t} for some t (the queries
  /// the document may affect).
  void CollectAffectedQueries(const Document& doc, std::vector<QueryId>* out);

  /// Arrival handling for one affected query (Section III-B).
  void ProcessArrival(QueryState& state, const Document& doc);

  /// Expiration handling for one affected query (Section III-B).
  void ProcessExpiry(QueryState& state, const Document& doc);

  /// The unified threshold search: used for the initial top-k computation
  /// (Section III-A) and, because R keeps the unverified documents, for
  /// the incremental refill after expirations. Reads inverted lists
  /// downward from the current local thresholds — favoring the list with
  /// the highest w_{Q,t} * c_t — until S_k >= tau or all lists are
  /// exhausted. Finalizes thresholds at the last-read weights, draining
  /// boundary tie runs so I1 holds exactly.
  void ExtendSearch(QueryState& state);

  /// The roll-up of Section III-B: while tau can rise without exceeding
  /// S_k, lift the local threshold of the list with the smallest
  /// w_{Q,t} * c_t to the next distinct weight above it, evicting from R
  /// the documents that fall below all local thresholds.
  void RollUp(QueryState& state);

  /// Scores `doc` against `state` and adds it to R (it must be absent).
  void ScoreIntoResult(QueryState& state, const Document& doc);

  /// Moves theta[i] (vector + threshold tree entry) to `new_theta`.
  void SetTheta(QueryState& state, std::size_t i, double new_theta);

  /// The current local threshold of `term` in `state`; the term must be
  /// part of the query.
  double ThetaOf(const QueryState& state, TermId term) const;

  /// Shared batch-hook front half: flattens one posting per (document,
  /// term) of the batch and sorts it ONCE into per-term ImpactOrder runs.
  /// Each run is handed to `run_op(term, first, last)` — the bulk index
  /// insert/erase — and then probed against the term's threshold tree
  /// once, with the run's max weight, emitting one (query, posting index)
  /// pair per posting that clears the query's local threshold for that
  /// term. Pairs come out sorted by (query, epoch position) with
  /// duplicates removed, ready for grouped per-query processing.
  template <typename DocRange, typename GetDoc, typename RunOp>
  void CollectBatchAffected(const DocRange& docs, GetDoc&& get_doc,
                            RunOp&& run_op);

  ItaTuning tuning_;
  InvertedIndex index_;
  std::unordered_map<QueryId, std::unique_ptr<QueryState>> states_;
  std::unordered_map<TermId, ThresholdTree> trees_;
  std::vector<QueryId> probe_scratch_;

  // Batch (epoch) scratch, reused across IngestBatch calls. Postings
  // radix-scatter into the buckets below keyed by the term's low bits
  // (same term -> same bucket), and only each small bucket gets sorted —
  // never the epoch's full posting set.
  struct BatchPosting {
    double weight = 0.0;
    DocId doc = kInvalidDocId;
    TermId term = kInvalidTermId;
    std::uint32_t doc_index = 0;  ///< position in the epoch's doc sequence
  };
  /// Forward iterator presenting a grouped posting run as ImpactEntries —
  /// the shape InvertedIndex::InsertRun/EraseRun consume.
  struct BatchRunIterator {
    const BatchPosting* p = nullptr;
    ImpactEntry operator*() const { return ImpactEntry{p->weight, p->doc}; }
    BatchRunIterator& operator++() {
      ++p;
      return *this;
    }
    friend bool operator==(BatchRunIterator a, BatchRunIterator b) {
      return a.p == b.p;
    }
    friend bool operator!=(BatchRunIterator a, BatchRunIterator b) {
      return a.p != b.p;
    }
  };
  std::vector<BatchPosting> batch_postings_;  ///< grouped per term after scatter
  /// Radix-bucket scratch: postings scatter into 2^k buckets keyed by the
  /// term's low bits (same term -> same bucket), then each small bucket is
  /// sorted by (term, ImpactOrder), which makes term runs contiguous. The
  /// histogram stays L1-resident, unlike any dictionary-sized table.
  std::vector<std::uint32_t> bucket_start_;
  std::vector<std::uint32_t> bucket_cursor_;
  std::vector<std::pair<QueryId, std::uint32_t>> batch_affected_;
};

}  // namespace ita
