// The strategy seam between the server core and the execution layer
// (exec/): the narrow surface an epoch driver needs to embed a complete
// search server — ItaServer, NaiveServer or OracleServer — inside a shard
// without going through the public wrapper API (DESIGN.md §6).
//
// ContinuousSearchServer implements this interface; its public
// Ingest/IngestBatch/AdvanceTime are thin compositions of the phase
// methods below. A driver that owns several embedded servers (one per
// shard) can instead run each phase across all shards with a barrier in
// between, which is exactly what exec::EpochScheduler does:
//
//   plan   = shard->PlanEpoch(batch)        (identical across shards)
//   phase 1: every shard RunExpirePhase(plan)       — barrier —
//   phase 2: every shard RunArrivePhase(plan, docs) — barrier —
//   merge:   every shard TakeChangedQueries(), flushed deterministically
//
// The phase methods are NOT individually thread-safe: a driver must never
// run two phases of the same server concurrently. Distinct servers share
// no mutable state and may run concurrently without synchronization.

#pragma once

#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"
#include "core/query.h"
#include "core/result_set.h"
#include "stream/document.h"

namespace ita {

/// The split of one epoch, computed by PlanEpoch(): when the epoch ends,
/// which prefix of the batch is transient (arrives and expires within the
/// epoch) and how many documents actually join the window. A pure-expiry
/// epoch (AdvanceTime) is an EpochPlan with only `epoch_end` set.
struct EpochPlan {
  Timestamp epoch_end = 0;
  /// Batch documents before this index are transient: they receive ids
  /// (keeping the id sequence identical to sequential ingestion) but never
  /// reach the strategy hooks, since their net effect on every result is
  /// nil. Nonzero only when the batch alone overflows the window.
  std::size_t first_survivor = 0;
  /// Number of surviving arrivals (batch size minus the transients).
  std::size_t arriving = 0;
};

class ServerStrategy {
 public:
  virtual ~ServerStrategy() = default;

  /// Human-readable strategy name ("ita", "naive", "oracle").
  virtual std::string name() const = 0;

  // --- Query plumbing with driver-assigned ids -----------------------
  // A sharded driver owns the global id sequence and routes each query to
  // the shard the id hashes to, so embedded servers must accept the id
  // instead of assigning their own.

  /// Installs `query` under the caller-chosen id (which must be neither
  /// kInvalidQueryId nor in use); its result is immediately computed over
  /// the current window contents.
  virtual Status RegisterQueryWithId(QueryId id, Query query) = 0;

  /// Terminates a continuous query.
  virtual Status UnregisterQuery(QueryId id) = 0;

  // --- Epoch phases --------------------------------------------------

  /// Validates `batch` (non-empty, non-decreasing arrival times, also
  /// relative to previous epochs) and computes the epoch split. Const:
  /// nothing is mutated, so a failed plan leaves every shard untouched.
  virtual StatusOr<EpochPlan> PlanEpoch(
      const std::vector<Document>& batch) const = 0;

  /// Phase 1: processes every expiration the epoch implies — documents
  /// pushed out by the plan's arrivals (count-based windows) or invalid at
  /// `plan.epoch_end` (time-based windows) — as one OnExpireBatch call.
  virtual void RunExpirePhase(const EpochPlan& plan) = 0;

  /// Phase 2: appends the batch to the window (transients per the plan)
  /// and processes the surviving arrivals as one OnArriveBatch call.
  /// Returns the assigned ids, in batch order — deterministic, so every
  /// shard of a broadcast epoch assigns identical ids. The caller must
  /// have run RunExpirePhase(plan) first.
  virtual std::vector<DocId> RunArrivePhase(const EpochPlan& plan,
                                            std::vector<Document> batch) = 0;

  // --- Notification merge --------------------------------------------

  /// While enabled, the server records changed queries even though it has
  /// no result listener of its own, so the driver can drain and merge
  /// them. The driver toggles this to mirror its own listener lifetime
  /// (tracking without an eventual observer would be wasted bookkeeping).
  virtual void SetChangeTracking(bool enabled) = 0;

  /// Drains the queries whose top-k changed since the last drain (sorted
  /// ascending, dedup'd). The driver calls this after the arrive barrier
  /// and flushes the merged set through its own ResultNotifier.
  virtual std::vector<QueryId> TakeChangedQueries() = 0;

  // --- Read side ------------------------------------------------------

  /// Snapshot of the current top-k result of a query, best first.
  virtual StatusOr<std::vector<ResultEntry>> Result(QueryId id) const = 0;

  virtual const ServerStats& stats() const = 0;
  virtual void ResetStats() = 0;
  virtual std::size_t window_size() const = 0;
  virtual std::size_t query_count() const = 0;
};

}  // namespace ita
