/// \file
/// The strategy seam between the server core and the execution layer
/// (exec/): the narrow surface an epoch driver needs to embed a complete
/// search server — ItaServer, NaiveServer or OracleServer — inside a shard
/// without going through the public wrapper API (DESIGN.md §6, §8).
///
/// ContinuousSearchServer implements this interface; its public
/// Ingest/IngestBatch/AdvanceTime are thin compositions of the phase
/// methods below around its own (owned) DocumentArena. A driver that owns
/// several embedded servers (one per shard) owns ONE shared arena instead,
/// performs every arena mutation itself, and runs each phase across all
/// shards with a barrier in between — exactly what exec::ShardedServer
/// does:
///
///   plan = shard->PlanEpoch(batch)                 (identical across shards)
///   pop:     arena.PopExpiredInto(plan.expiring)   (driver, views readable)
///   phase 1: every shard RunExpirePhase(plan, expired)   — barrier —
///   append:  arena.AppendEpoch(batch, plan.first_survivor)  (driver)
///   phase 2: every shard RunArrivePhase(plan, arrived)   — barrier —
///   reclaim: arena.ReclaimExpired()                (driver)
///   merge:   every shard TakeChangedQueries(), flushed deterministically
///
/// The strategies never mutate the arena: they consume DocumentView spans
/// the driver hands them and read the arena for rescans (Naive's refill,
/// ITA's threshold search) — which is what makes one arena shareable
/// across S shards with document bytes constant in S.
///
/// The phase methods are NOT individually thread-safe: a driver must never
/// run two phases of the same server concurrently. Distinct servers share
/// no mutable state of their own and may run concurrently; the shared
/// arena is read-only during phases (the driver mutates it strictly
/// between them, and the phase barrier orders mutation against reads).

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/types.h"
#include "core/query.h"
#include "core/result_set.h"
#include "obs/phase_recorder.h"
#include "stream/document.h"
#include "stream/document_arena.h"

namespace ita::persist {
class SnapshotReader;
class SnapshotWriter;
}  // namespace ita::persist

namespace ita {

/// The narrow embedded-server surface an epoch driver programs against.
/// See the file comment for the full epoch protocol.
class ServerStrategy {
 public:
  virtual ~ServerStrategy() = default;  ///< strategies delete through the seam

  /// Human-readable strategy name ("ita", "naive", "oracle").
  virtual std::string name() const = 0;

  // --- Query plumbing with driver-assigned ids -----------------------
  // A sharded driver owns the global id sequence and routes each query to
  // the shard the id hashes to, so embedded servers must accept the id
  // instead of assigning their own.

  /// Installs `query` under the caller-chosen id (which must be neither
  /// kInvalidQueryId nor in use); its result is immediately computed over
  /// the current window contents.
  virtual Status RegisterQueryWithId(QueryId id, Query query) = 0;

  /// Terminates a continuous query.
  virtual Status UnregisterQuery(QueryId id) = 0;

  // --- Load-aware placement (exec::ShardedServer's rebalancer) --------

  /// Removes the query from this server and returns its definition, so a
  /// sharded driver can re-register it on another shard at an epoch
  /// boundary. Re-registration recomputes the result over the current
  /// window, which is exact (I1/I2 hold with freshly-derived thresholds),
  /// so a migration never changes a reported score. The default refuses:
  /// only strategies whose registration is placement-independent opt in.
  virtual StatusOr<Query> ExtractQuery(QueryId id) {
    (void)id;
    return Status::Unimplemented("strategy does not support query extraction");
  }

  /// Appends up to `max` of this server's most work-expensive queries
  /// since the last drain, as (id, accumulated work) pairs sorted by
  /// descending work (ties ascending id), and decays the drained
  /// accounting. The rebalancer's victim-selection signal; the default
  /// reports none (drivers fall back to id-ordered selection).
  virtual void DrainTopWorkQueries(
      std::size_t max, std::vector<std::pair<QueryId, std::uint64_t>>& out) {
    (void)max;
    out.clear();
  }

  /// Primes a FRESHLY constructed shard for a shared arena that already
  /// holds window documents — the shard-lifecycle seam behind live
  /// resharding and cross-shape restore (exec::ShardedServer::Reshard):
  /// adopts `stream_clock` as the stream watermark (so batch-time
  /// validation continues from the driver's clock, not from zero) and a
  /// strategy that keeps derived per-document structures (ITA's inverted
  /// postings) rebuilds them from the arena contents, so later expire
  /// phases find every posting they erase. Must run before any
  /// RegisterQueryWithId. The default ignores the call — correct only
  /// for strategies carrying no per-document or stream-clock state.
  virtual Status AdoptWindow(Timestamp stream_clock) {
    (void)stream_clock;
    return Status::OK();
  }

  // --- Epoch phases --------------------------------------------------

  /// Validates `batch` (non-empty, non-decreasing arrival times, also
  /// relative to previous epochs) and computes the epoch split against
  /// the window arena. Const: nothing is mutated, so a failed plan leaves
  /// every shard untouched. Shards sharing one arena (and one stream
  /// history) compute identical plans, so a driver plans once.
  virtual StatusOr<EpochPlan> PlanEpoch(
      const std::vector<Document>& batch) const = 0;

  /// Phase 1: processes the epoch's expirations — the `plan.expiring`
  /// documents the driver has already popped from the arena, whose views
  /// are passed in (oldest first) and stay readable for the duration of
  /// the phase — as one OnExpireBatch call. The arena no longer lists
  /// them as valid, so rescans during the phase see only surviving
  /// documents.
  virtual void RunExpirePhase(const EpochPlan& plan,
                              std::span<const DocumentView> expired) = 0;

  /// Phase 2: processes the epoch's surviving arrivals — already appended
  /// to the arena by the driver, views passed in oldest first — as one
  /// OnArriveBatch call. The caller must have run RunExpirePhase(plan)
  /// first. Transients (plan.first_survivor of them) received ids from
  /// the arena but appear in no view span; the strategy accounts them in
  /// its stats only.
  virtual void RunArrivePhase(const EpochPlan& plan,
                              std::span<const DocumentView> arrived) = 0;

  // --- Notification merge --------------------------------------------

  /// While enabled, the server records changed queries even though it has
  /// no result listener of its own, so the driver can drain and merge
  /// them. The driver toggles this to mirror its own listener lifetime
  /// (tracking without an eventual observer would be wasted bookkeeping).
  virtual void SetChangeTracking(bool enabled) = 0;

  /// Drains the queries whose top-k changed since the last drain (sorted
  /// ascending, dedup'd). The driver calls this after the arrive barrier
  /// and flushes the merged set through its own ResultNotifier.
  virtual std::vector<QueryId> TakeChangedQueries() = 0;

  // --- Telemetry ------------------------------------------------------

  /// Points the strategy's span instrumentation (obs/phase_recorder.h) at
  /// `recorder`; null (the default) disables it. An epoch driver wires
  /// each shard's private recorder once, before any epoch; the recorder
  /// must outlive the spans, and the driver's phase barrier orders the
  /// shard's writes against its own epoch-end drain. The default ignores
  /// the recorder, so strategies without instrumentation need no code.
  virtual void SetPhaseRecorder(obs::PhaseRecorder* recorder) {
    (void)recorder;
  }

  // --- Persistence (src/persist/, DESIGN.md §13) ----------------------

  /// Writes this server's full state as named sections of `snapshot`, at
  /// an epoch boundary (never mid-phase). The default refuses: only
  /// strategies whose state is serializable opt in. Const — a checkpoint
  /// observes, it never perturbs.
  virtual Status Checkpoint(persist::SnapshotWriter& snapshot) const {
    (void)snapshot;
    return Status::Unimplemented("strategy does not support checkpointing");
  }

  /// Rebuilds this server's state from a snapshot written by the same
  /// strategy over the same configuration. Only valid on a freshly
  /// constructed (empty) server; a failed restore leaves the server
  /// unusable (construct a new one). The default refuses.
  virtual Status Restore(const persist::SnapshotReader& snapshot) {
    (void)snapshot;
    return Status::Unimplemented("strategy does not support restore");
  }

  // --- Read side ------------------------------------------------------

  /// Snapshot of the current top-k result of a query, best first.
  virtual StatusOr<std::vector<ResultEntry>> Result(QueryId id) const = 0;

  /// Operation counters and memory gauges (common/stats.h).
  virtual const ServerStats& stats() const = 0;
  /// Zeroes every counter and gauge.
  virtual void ResetStats() = 0;
  /// Number of valid documents in the window arena.
  virtual std::size_t window_size() const = 0;
  /// Number of registered continuous queries.
  virtual std::size_t query_count() const = 0;
};

}  // namespace ita
