#include "core/server.h"

#include <algorithm>

#include "common/logging.h"

namespace ita {

ContinuousSearchServer::ContinuousSearchServer(ServerOptions options)
    : options_(options) {
  ITA_CHECK_OK(options_.window.Validate());
}

StatusOr<QueryId> ContinuousSearchServer::RegisterQuery(Query query) {
  ITA_RETURN_NOT_OK(ValidateQuery(query));
  const QueryId id = next_query_id_++;
  const auto [it, inserted] = queries_.emplace(id, std::move(query));
  ITA_DCHECK(inserted);
  const Status status = OnRegisterQuery(id, it->second);
  if (!status.ok()) {
    queries_.erase(it);
    return status;
  }
  return id;
}

Status ContinuousSearchServer::UnregisterQuery(QueryId id) {
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  ITA_RETURN_NOT_OK(OnUnregisterQuery(id));
  queries_.erase(it);
  return Status::OK();
}

StatusOr<DocId> ContinuousSearchServer::Ingest(Document document) {
  if (document.arrival_time < last_arrival_time_) {
    return Status::InvalidArgument(
        "document arrival times must be non-decreasing");
  }
  last_arrival_time_ = document.arrival_time;

  // Expire documents the new arrival pushes out of the window — "a
  // document d_ins arrives, forcing an existing one d_del to expire".
  if (options_.window.kind == WindowSpec::Kind::kCountBased) {
    while (store_.size() >= options_.window.count) ExpireOldest();
  } else {
    while (!store_.empty() &&
           !options_.window.ValidAt(store_.Oldest().arrival_time,
                                    document.arrival_time)) {
      ExpireOldest();
    }
  }

  const DocId id = store_.Append(std::move(document));
  const Document* stored = store_.Get(id);
  ITA_DCHECK(stored != nullptr);
  OnArrive(*stored);
  ++stats_.documents_ingested;

  FlushNotifications();
  return id;
}

Status ContinuousSearchServer::AdvanceTime(Timestamp now) {
  if (now < last_arrival_time_) {
    return Status::InvalidArgument("time may not move backwards");
  }
  last_arrival_time_ = now;
  if (options_.window.kind == WindowSpec::Kind::kTimeBased) {
    while (!store_.empty() &&
           !options_.window.ValidAt(store_.Oldest().arrival_time, now)) {
      ExpireOldest();
    }
  }
  FlushNotifications();
  return Status::OK();
}

StatusOr<std::vector<ResultEntry>> ContinuousSearchServer::Result(QueryId id) const {
  if (queries_.find(id) == queries_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  return CurrentResult(id);
}

void ContinuousSearchServer::ExpireOldest() {
  // Remove the document from the store first: strategies that rescan the
  // valid documents during OnExpire (Naive's refill) must not see it.
  const Document expired = store_.PopOldest();
  OnExpire(expired);
  ++stats_.documents_expired;
}

void ContinuousSearchServer::MarkResultChanged(QueryId id) {
  if (listener_ == nullptr) return;
  if (std::find(changed_queries_.begin(), changed_queries_.end(), id) ==
      changed_queries_.end()) {
    changed_queries_.push_back(id);
  }
}

void ContinuousSearchServer::FlushNotifications() {
  if (listener_ == nullptr || changed_queries_.empty()) return;
  for (const QueryId id : changed_queries_) {
    listener_(id, CurrentResult(id));
  }
  changed_queries_.clear();
}

const Query& ContinuousSearchServer::GetQuery(QueryId id) const {
  const auto it = queries_.find(id);
  ITA_CHECK(it != queries_.end()) << "unknown query id " << id;
  return it->second;
}

}  // namespace ita
