#include "core/server.h"

#include <algorithm>

#include "common/logging.h"

namespace ita {

ContinuousSearchServer::ContinuousSearchServer(ServerOptions options)
    : options_(options) {
  ITA_CHECK_OK(options_.window.Validate());
  if (options_.shared_arena != nullptr) {
    arena_ = options_.shared_arena;
  } else {
    owned_arena_ = std::make_unique<DocumentArena>();
    arena_ = owned_arena_.get();
  }
}

void ContinuousSearchServer::EnableTracing(std::size_t capacity) {
#if ITA_OBS_ENABLED
  trace_ = std::make_unique<obs::EpochTrace>(capacity, /*shards=*/1);
  phase_recorder_ = trace_->shard_recorder(0);
#else
  (void)capacity;  // spans compile to nothing; a trace would stay empty
#endif
}

StatusOr<QueryId> ContinuousSearchServer::RegisterQuery(Query query) {
  ITA_RETURN_NOT_OK(ValidateQuery(query));
  const QueryId id = next_query_id_++;
  ITA_RETURN_NOT_OK(InstallQuery(id, std::move(query)));
  return id;
}

Status ContinuousSearchServer::RegisterQueryWithId(QueryId id, Query query) {
  ITA_RETURN_NOT_OK(ValidateQuery(query));
  if (id == kInvalidQueryId) {
    return Status::InvalidArgument("reserved query id");
  }
  if (queries_.find(id) != queries_.end()) {
    return Status::InvalidArgument("query id " + std::to_string(id) +
                                   " already in use");
  }
  next_query_id_ = std::max(next_query_id_, id + 1);
  return InstallQuery(id, std::move(query));
}

Status ContinuousSearchServer::InstallQuery(QueryId id, Query query) {
  const auto [it, inserted] = queries_.emplace(id, std::move(query));
  ITA_DCHECK(inserted);
  const Status status = OnRegisterQuery(id, it->second);
  if (!status.ok()) {
    queries_.erase(it);
    return status;
  }
  stats_.registered_queries = queries_.size();
  return Status::OK();
}

Status ContinuousSearchServer::UnregisterQuery(QueryId id) {
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  ITA_RETURN_NOT_OK(OnUnregisterQuery(id));
  queries_.erase(it);
  notifier_.Unmark(id);
  stats_.registered_queries = queries_.size();
  return Status::OK();
}

StatusOr<Query> ContinuousSearchServer::ExtractQuery(QueryId id) {
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  Query copy = it->second;  // the strategy hook reads it during teardown
  ITA_RETURN_NOT_OK(UnregisterQuery(id));
  return copy;
}

StatusOr<DocId> ContinuousSearchServer::Ingest(Document document) {
  ITA_CHECK(owns_arena())
      << "shared-arena servers are streamed by their epoch driver";
  if (document.arrival_time < last_arrival_time_) {
    return Status::InvalidArgument(
        "document arrival times must be non-decreasing");
  }
  last_arrival_time_ = document.arrival_time;

#if ITA_OBS_ENABLED
  obs::Timer epoch_timer;
  if (trace_ != nullptr) trace_->BeginEpoch(stats_.batches_ingested);
#endif

  // Expire documents the new arrival pushes out of the window — "a
  // document d_ins arrives, forcing an existing one d_del to expire".
  // Per-event semantics: each expiry is its own event (pop, then hook),
  // so a strategy's rescan during OnExpire sees the remaining documents.
  {
    ITA_OBS_SPAN(phase_recorder_, obs::Phase::kExpire);
    if (options_.window.kind == WindowSpec::Kind::kCountBased) {
      while (arena_->size() >= options_.window.count) ExpireOldest();
    } else {
      while (!arena_->empty() &&
             !options_.window.ValidAt(arena_->Oldest().arrival_time,
                                      document.arrival_time)) {
        ExpireOldest();
      }
    }
  }

  const DocId id = arena_->Append(std::move(document));
  const auto stored = arena_->Get(id);
  ITA_DCHECK(stored.has_value());
  {
    ITA_OBS_SPAN(phase_recorder_, obs::Phase::kArrive);
    OnArrive(*stored);
  }
  ++stats_.documents_ingested;

  arena_->ReclaimExpired();
  RefreshArenaGauges();
  {
    ITA_OBS_SPAN(phase_recorder_, obs::Phase::kNotifyFlush);
    FlushNotifications();
  }
#if ITA_OBS_ENABLED
  if (trace_ != nullptr) trace_->EndEpoch(epoch_timer.ElapsedNanos());
#endif
  return id;
}

StatusOr<EpochPlan> ContinuousSearchServer::PlanEpoch(
    const std::vector<Document>& batch) const {
  return arena_->PlanEpoch(options_.window, last_arrival_time_, batch);
}

void ContinuousSearchServer::RunExpirePhase(
    const EpochPlan& plan, std::span<const DocumentView> expired) {
  ITA_OBS_SPAN(phase_recorder_, obs::Phase::kExpire);
  last_arrival_time_ = std::max(last_arrival_time_, plan.epoch_end);
  ITA_DCHECK(expired.size() == plan.expiring);
  if (!expired.empty()) {
    OnExpireBatch(expired);
    stats_.documents_expired += expired.size();
  }
}

void ContinuousSearchServer::RunArrivePhase(
    const EpochPlan& plan, std::span<const DocumentView> arrived) {
  ITA_OBS_SPAN(phase_recorder_, obs::Phase::kArrive);
  last_arrival_time_ = std::max(last_arrival_time_, plan.epoch_end);
  ITA_DCHECK(arrived.size() == plan.arriving);

  // Transients received ids from the arena (keeping the id sequence
  // identical to sequential ingestion) but never reach the hooks.
  stats_.documents_expired += plan.first_survivor;

  if (!arrived.empty()) OnArriveBatch(arrived);

  stats_.documents_ingested += plan.first_survivor + plan.arriving;
  ++stats_.batches_ingested;
}

StatusOr<std::vector<DocId>> ContinuousSearchServer::IngestBatch(
    std::vector<Document> batch) {
  if (batch.empty()) return std::vector<DocId>{};
  ITA_CHECK(owns_arena())
      << "shared-arena servers are streamed by their epoch driver";

#if ITA_OBS_ENABLED
  obs::Timer epoch_timer;
  if (trace_ != nullptr) trace_->BeginEpoch(stats_.batches_ingested);
#endif

  EpochPlan plan;
  {
    ITA_OBS_SPAN(phase_recorder_, obs::Phase::kPlan);
    const auto planned = PlanEpoch(batch);
    ITA_RETURN_NOT_OK(planned.status());
    plan = *planned;
  }
  const std::size_t total = batch.size();

  // The epoch protocol of core/server_strategy.h, single-shard edition:
  // pop, expire phase, append, arrive phase, reclaim, flush.
  expired_scratch_.clear();
  arena_->PopExpiredInto(plan.expiring, expired_scratch_);
  RunExpirePhase(plan, expired_scratch_);

  const DocId first = arena_->AppendEpoch(std::move(batch), plan.first_survivor);
  arrived_scratch_.clear();
  arena_->TailViewsInto(plan.arriving, arrived_scratch_);
  RunArrivePhase(plan, arrived_scratch_);

  arena_->ReclaimExpired();
  RefreshArenaGauges();
  {
    ITA_OBS_SPAN(phase_recorder_, obs::Phase::kNotifyFlush);
    FlushNotifications();
  }
#if ITA_OBS_ENABLED
  if (trace_ != nullptr) trace_->EndEpoch(epoch_timer.ElapsedNanos());
#endif

  std::vector<DocId> ids(total);
  for (std::size_t i = 0; i < total; ++i) ids[i] = first + i;
  return ids;
}

Status ContinuousSearchServer::AdvanceTime(Timestamp now) {
  ITA_CHECK(owns_arena())
      << "shared-arena servers are streamed by their epoch driver";
  if (now < last_arrival_time_) {
    return Status::InvalidArgument("time may not move backwards");
  }
#if ITA_OBS_ENABLED
  obs::Timer epoch_timer;
  if (trace_ != nullptr) trace_->BeginEpoch(stats_.batches_ingested);
#endif
  const EpochPlan plan = arena_->PlanAdvance(options_.window, now);
  expired_scratch_.clear();
  arena_->PopExpiredInto(plan.expiring, expired_scratch_);
  RunExpirePhase(plan, expired_scratch_);
  arena_->ReclaimExpired();
  RefreshArenaGauges();
  {
    ITA_OBS_SPAN(phase_recorder_, obs::Phase::kNotifyFlush);
    FlushNotifications();
  }
#if ITA_OBS_ENABLED
  if (trace_ != nullptr) trace_->EndEpoch(epoch_timer.ElapsedNanos());
#endif
  return Status::OK();
}

StatusOr<std::vector<ResultEntry>> ContinuousSearchServer::Result(QueryId id) const {
  if (queries_.find(id) == queries_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  return CurrentResult(id);
}

void ContinuousSearchServer::ExpireOldest() {
  // Pop the document from the arena first: strategies that rescan the
  // valid documents during OnExpire (Naive's refill) must not see it. The
  // view stays readable until the arena reclaims at the event's end.
  const DocumentView expired = arena_->PopOldest();
  OnExpire(expired);
  ++stats_.documents_expired;
}

void ContinuousSearchServer::MarkResultChanged(QueryId id) {
  notifier_.Mark(id);
}

void ContinuousSearchServer::FlushNotifications() {
  notifier_.Flush([this](QueryId id) { return CurrentResult(id); });
}

void ContinuousSearchServer::RefreshArenaGauges() {
  if (!owns_arena()) return;  // the embedding driver owns those gauges
  stats_.arena_segments = arena_->segment_count();
  stats_.document_bytes = arena_->document_bytes();
}

const Query& ContinuousSearchServer::GetQuery(QueryId id) const {
  const auto it = queries_.find(id);
  ITA_CHECK(it != queries_.end()) << "unknown query id " << id;
  return it->second;
}

}  // namespace ita
