#include "core/server.h"

#include <algorithm>

#include "common/logging.h"
#include "persist/snapshot.h"

namespace ita {

namespace {

/// Every ServerStats field, in declaration order — the persisted stats
/// layout. Keep in sync with common/stats.h (the round-trip test pins
/// the field count).
template <typename Stats, typename Fn>
void ForEachStatsField(Stats& stats, Fn&& fn) {
  fn(stats.documents_ingested);
  fn(stats.documents_expired);
  fn(stats.batches_ingested);
  fn(stats.index_entries_inserted);
  fn(stats.index_entries_erased);
  fn(stats.scores_computed);
  fn(stats.queries_probed);
  fn(stats.membership_checks);
  fn(stats.result_insertions);
  fn(stats.result_removals);
  fn(stats.threshold_probe_steps);
  fn(stats.list_entries_read);
  fn(stats.rollup_steps);
  fn(stats.rollup_evictions);
  fn(stats.refills);
  fn(stats.full_rescans);
  fn(stats.tier_promotions);
  fn(stats.tier_demotions);
  fn(stats.catalog_slab_bytes);
  fn(stats.postings_bytes);
  fn(stats.threshold_entries);
  fn(stats.query_state_slots);
  fn(stats.hot_tier_terms);
  fn(stats.registered_queries);
  fn(stats.arena_segments);
  fn(stats.document_bytes);
}

void SerializeStats(persist::WireWriter& w, const ServerStats& stats) {
  ForEachStatsField(stats, [&w](const std::uint64_t& field) {
    w.PutU64(field);
  });
}

Status DeserializeStats(persist::WireReader& r, ServerStats* stats) {
  Status status = Status::OK();
  ForEachStatsField(*stats, [&r, &status](std::uint64_t& field) {
    if (status.ok()) status = r.ReadU64(&field);
  });
  return status;
}

}  // namespace

ContinuousSearchServer::ContinuousSearchServer(ServerOptions options)
    : options_(options) {
  ITA_CHECK_OK(options_.window.Validate());
  if (options_.shared_arena != nullptr) {
    arena_ = options_.shared_arena;
  } else {
    owned_arena_ = std::make_unique<DocumentArena>();
    arena_ = owned_arena_.get();
  }
}

void ContinuousSearchServer::EnableTracing(std::size_t capacity) {
#if ITA_OBS_ENABLED
  trace_ = std::make_unique<obs::EpochTrace>(capacity, /*shards=*/1);
  phase_recorder_ = trace_->shard_recorder(0);
#else
  (void)capacity;  // spans compile to nothing; a trace would stay empty
#endif
}

StatusOr<QueryId> ContinuousSearchServer::RegisterQuery(Query query) {
  ITA_RETURN_NOT_OK(ValidateQuery(query));
  const QueryId id = next_query_id_++;
  ITA_RETURN_NOT_OK(InstallQuery(id, std::move(query)));
  return id;
}

Status ContinuousSearchServer::RegisterQueryWithId(QueryId id, Query query) {
  ITA_RETURN_NOT_OK(ValidateQuery(query));
  if (id == kInvalidQueryId) {
    return Status::InvalidArgument("reserved query id");
  }
  if (queries_.find(id) != queries_.end()) {
    return Status::InvalidArgument("query id " + std::to_string(id) +
                                   " already in use");
  }
  next_query_id_ = std::max(next_query_id_, id + 1);
  return InstallQuery(id, std::move(query));
}

Status ContinuousSearchServer::InstallQuery(QueryId id, Query query) {
  const auto [it, inserted] = queries_.emplace(id, std::move(query));
  ITA_DCHECK(inserted);
  const Status status = OnRegisterQuery(id, it->second);
  if (!status.ok()) {
    queries_.erase(it);
    return status;
  }
  stats_.registered_queries = queries_.size();
  return Status::OK();
}

Status ContinuousSearchServer::UnregisterQuery(QueryId id) {
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  ITA_RETURN_NOT_OK(OnUnregisterQuery(id));
  queries_.erase(it);
  notifier_.Unmark(id);
  stats_.registered_queries = queries_.size();
  return Status::OK();
}

StatusOr<Query> ContinuousSearchServer::ExtractQuery(QueryId id) {
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  Query copy = it->second;  // the strategy hook reads it during teardown
  ITA_RETURN_NOT_OK(UnregisterQuery(id));
  return copy;
}

Status ContinuousSearchServer::AdoptWindow(Timestamp stream_clock) {
  if (owns_arena()) {
    return Status::FailedPrecondition(
        "only shared-arena embedded servers adopt a window");
  }
  if (!queries_.empty() || stats_.documents_ingested != 0 ||
      stats_.batches_ingested != 0) {
    return Status::FailedPrecondition(
        "adopt requires a freshly constructed server");
  }
  last_arrival_time_ = std::max(last_arrival_time_, stream_clock);
  return OnAdoptWindow();
}

StatusOr<DocId> ContinuousSearchServer::Ingest(Document document) {
  ITA_CHECK(owns_arena())
      << "shared-arena servers are streamed by their epoch driver";
  if (document.arrival_time < last_arrival_time_) {
    return Status::InvalidArgument(
        "document arrival times must be non-decreasing");
  }
  last_arrival_time_ = document.arrival_time;

#if ITA_OBS_ENABLED
  obs::Timer epoch_timer;
  if (trace_ != nullptr) trace_->BeginEpoch(stats_.batches_ingested);
#endif

  // Expire documents the new arrival pushes out of the window — "a
  // document d_ins arrives, forcing an existing one d_del to expire".
  // Per-event semantics: each expiry is its own event (pop, then hook),
  // so a strategy's rescan during OnExpire sees the remaining documents.
  {
    ITA_OBS_SPAN(phase_recorder_, obs::Phase::kExpire);
    if (options_.window.kind == WindowSpec::Kind::kCountBased) {
      while (arena_->size() >= options_.window.count) ExpireOldest();
    } else {
      while (!arena_->empty() &&
             !options_.window.ValidAt(arena_->Oldest().arrival_time,
                                      document.arrival_time)) {
        ExpireOldest();
      }
    }
  }

  const DocId id = arena_->Append(std::move(document));
  const auto stored = arena_->Get(id);
  ITA_DCHECK(stored.has_value());
  {
    ITA_OBS_SPAN(phase_recorder_, obs::Phase::kArrive);
    OnArrive(*stored);
  }
  ++stats_.documents_ingested;

  arena_->ReclaimExpired();
  RefreshArenaGauges();
  {
    ITA_OBS_SPAN(phase_recorder_, obs::Phase::kNotifyFlush);
    FlushNotifications();
  }
#if ITA_OBS_ENABLED
  if (trace_ != nullptr) trace_->EndEpoch(epoch_timer.ElapsedNanos());
#endif
  return id;
}

StatusOr<EpochPlan> ContinuousSearchServer::PlanEpoch(
    const std::vector<Document>& batch) const {
  return arena_->PlanEpoch(options_.window, last_arrival_time_, batch);
}

void ContinuousSearchServer::RunExpirePhase(
    const EpochPlan& plan, std::span<const DocumentView> expired) {
  ITA_OBS_SPAN(phase_recorder_, obs::Phase::kExpire);
  last_arrival_time_ = std::max(last_arrival_time_, plan.epoch_end);
  ITA_DCHECK(expired.size() == plan.expiring);
  if (!expired.empty()) {
    OnExpireBatch(expired);
    stats_.documents_expired += expired.size();
  }
}

void ContinuousSearchServer::RunArrivePhase(
    const EpochPlan& plan, std::span<const DocumentView> arrived) {
  ITA_OBS_SPAN(phase_recorder_, obs::Phase::kArrive);
  last_arrival_time_ = std::max(last_arrival_time_, plan.epoch_end);
  ITA_DCHECK(arrived.size() == plan.arriving);

  // Transients received ids from the arena (keeping the id sequence
  // identical to sequential ingestion) but never reach the hooks.
  stats_.documents_expired += plan.first_survivor;

  if (!arrived.empty()) OnArriveBatch(arrived);

  stats_.documents_ingested += plan.first_survivor + plan.arriving;
  ++stats_.batches_ingested;
}

StatusOr<std::vector<DocId>> ContinuousSearchServer::IngestBatch(
    std::vector<Document> batch) {
  if (batch.empty()) return std::vector<DocId>{};
  ITA_CHECK(owns_arena())
      << "shared-arena servers are streamed by their epoch driver";

#if ITA_OBS_ENABLED
  obs::Timer epoch_timer;
  if (trace_ != nullptr) trace_->BeginEpoch(stats_.batches_ingested);
#endif

  EpochPlan plan;
  {
    ITA_OBS_SPAN(phase_recorder_, obs::Phase::kPlan);
    const auto planned = PlanEpoch(batch);
    ITA_RETURN_NOT_OK(planned.status());
    plan = *planned;
  }
  const std::size_t total = batch.size();

  // The epoch protocol of core/server_strategy.h, single-shard edition:
  // pop, expire phase, append, arrive phase, reclaim, flush.
  expired_scratch_.clear();
  arena_->PopExpiredInto(plan.expiring, expired_scratch_);
  RunExpirePhase(plan, expired_scratch_);

  const DocId first = arena_->AppendEpoch(std::move(batch), plan.first_survivor);
  arrived_scratch_.clear();
  arena_->TailViewsInto(plan.arriving, arrived_scratch_);
  RunArrivePhase(plan, arrived_scratch_);

  arena_->ReclaimExpired();
  RefreshArenaGauges();
  {
    ITA_OBS_SPAN(phase_recorder_, obs::Phase::kNotifyFlush);
    FlushNotifications();
  }
#if ITA_OBS_ENABLED
  if (trace_ != nullptr) trace_->EndEpoch(epoch_timer.ElapsedNanos());
#endif

  std::vector<DocId> ids(total);
  for (std::size_t i = 0; i < total; ++i) ids[i] = first + i;
  return ids;
}

Status ContinuousSearchServer::AdvanceTime(Timestamp now) {
  ITA_CHECK(owns_arena())
      << "shared-arena servers are streamed by their epoch driver";
  if (now < last_arrival_time_) {
    return Status::InvalidArgument("time may not move backwards");
  }
#if ITA_OBS_ENABLED
  obs::Timer epoch_timer;
  if (trace_ != nullptr) trace_->BeginEpoch(stats_.batches_ingested);
#endif
  const EpochPlan plan = arena_->PlanAdvance(options_.window, now);
  expired_scratch_.clear();
  arena_->PopExpiredInto(plan.expiring, expired_scratch_);
  RunExpirePhase(plan, expired_scratch_);
  arena_->ReclaimExpired();
  RefreshArenaGauges();
  {
    ITA_OBS_SPAN(phase_recorder_, obs::Phase::kNotifyFlush);
    FlushNotifications();
  }
#if ITA_OBS_ENABLED
  if (trace_ != nullptr) trace_->EndEpoch(epoch_timer.ElapsedNanos());
#endif
  return Status::OK();
}

Status ContinuousSearchServer::Checkpoint(
    persist::SnapshotWriter& snapshot) const {
  std::string core;
  persist::WireWriter w(&core);
  w.PutBytes(name());
  w.PutU8(static_cast<std::uint8_t>(options_.window.kind));
  w.PutU64(options_.window.count);
  w.PutI64(options_.window.duration);
  w.PutBool(owns_arena());
  w.PutU32(next_query_id_);
  w.PutI64(last_arrival_time_);

  // unordered_map iteration order is not canonical — sort by id so equal
  // states always serialize to equal bytes.
  std::vector<QueryId> ids;
  ids.reserve(queries_.size());
  for (const auto& [id, query] : queries_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w.PutU64(ids.size());
  for (const QueryId id : ids) {
    const Query& query = queries_.at(id);
    w.PutU32(id);
    w.PutU32(static_cast<std::uint32_t>(query.k));
    w.PutU64(query.terms.size());
    for (const TermWeight& tw : query.terms) {
      w.PutU32(tw.term);
      w.PutDouble(tw.weight);
    }
  }
  SerializeStats(w, stats_);
  snapshot.AddSection("server/core", core);

  if (owns_arena()) {
    std::string arena;
    arena_->SerializeTo(&arena);
    snapshot.AddSection("server/arena", arena);
  }
  return CheckpointStrategy(snapshot);
}

Status ContinuousSearchServer::Restore(
    const persist::SnapshotReader& snapshot) {
  if (!queries_.empty() || next_query_id_ != 1 || last_arrival_time_ != 0) {
    return Status::FailedPrecondition(
        "restore requires a freshly constructed server");
  }
  ITA_ASSIGN_OR_RETURN(const std::string_view core,
                       snapshot.Section("server/core"));
  persist::WireReader r(core);

  std::string snap_name;
  ITA_RETURN_NOT_OK(r.ReadString(&snap_name));
  if (snap_name != name()) {
    return Status::FailedPrecondition("snapshot was written by strategy '" +
                                      snap_name + "', this server is '" +
                                      name() + "'");
  }
  std::uint8_t kind = 0;
  std::uint64_t count = 0;
  std::int64_t duration = 0;
  ITA_RETURN_NOT_OK(r.ReadU8(&kind));
  ITA_RETURN_NOT_OK(r.ReadU64(&count));
  ITA_RETURN_NOT_OK(r.ReadI64(&duration));
  if (kind != static_cast<std::uint8_t>(options_.window.kind) ||
      count != options_.window.count ||
      duration != options_.window.duration) {
    return Status::FailedPrecondition(
        "snapshot window spec does not match this server's");
  }
  bool snap_owned = false;
  ITA_RETURN_NOT_OK(r.ReadBool(&snap_owned));
  if (snap_owned != owns_arena()) {
    return Status::FailedPrecondition(
        "snapshot arena-ownership mode does not match this server's");
  }
  std::uint32_t next_id = 0;
  std::int64_t last_arrival = 0;
  ITA_RETURN_NOT_OK(r.ReadU32(&next_id));
  ITA_RETURN_NOT_OK(r.ReadI64(&last_arrival));

  std::uint64_t n_queries = 0;
  ITA_RETURN_NOT_OK(r.ReadCount(&n_queries, 16));
  for (std::uint64_t i = 0; i < n_queries; ++i) {
    std::uint32_t id = 0;
    std::uint32_t k = 0;
    ITA_RETURN_NOT_OK(r.ReadU32(&id));
    ITA_RETURN_NOT_OK(r.ReadU32(&k));
    Query query;
    query.k = static_cast<int>(k);
    std::uint64_t n_terms = 0;
    ITA_RETURN_NOT_OK(r.ReadCount(&n_terms, 12));
    query.terms.reserve(n_terms);
    for (std::uint64_t t = 0; t < n_terms; ++t) {
      TermWeight tw;
      ITA_RETURN_NOT_OK(r.ReadU32(&tw.term));
      ITA_RETURN_NOT_OK(r.ReadDouble(&tw.weight));
      query.terms.push_back(tw);
    }
    ITA_RETURN_NOT_OK(ValidateQuery(query));
    if (!queries_.emplace(id, std::move(query)).second) {
      return Status::IoError("snapshot: duplicate query id " +
                             std::to_string(id));
    }
  }
  ServerStats persisted;
  ITA_RETURN_NOT_OK(DeserializeStats(r, &persisted));
  ITA_RETURN_NOT_OK(r.ExpectEnd());

  if (owns_arena()) {
    ITA_ASSIGN_OR_RETURN(const std::string_view arena_bytes,
                         snapshot.Section("server/arena"));
    ITA_RETURN_NOT_OK(arena_->DeserializeFrom(arena_bytes));
  }
  next_query_id_ = next_id;
  last_arrival_time_ = last_arrival;

  // The strategy rebuilds its state over the restored window; any stats
  // the default recompute path bumps are overwritten by the persisted
  // counters right after, so restore+replay counters stay deterministic.
  ITA_RETURN_NOT_OK(RestoreStrategy(snapshot));
  stats_ = persisted;
  RefreshArenaGauges();
  return Status::OK();
}

Status ContinuousSearchServer::RestoreStrategy(
    const persist::SnapshotReader& snapshot) {
  (void)snapshot;
  // Recompute path: re-derive strategy state from (queries, window) by
  // re-running registration ascending by id — exact for strategies whose
  // state is a pure function of both (Oracle, Naive).
  std::vector<QueryId> ids;
  ids.reserve(queries_.size());
  for (const auto& [id, query] : queries_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const QueryId id : ids) {
    ITA_RETURN_NOT_OK(OnRegisterQuery(id, queries_.at(id)));
  }
  return Status::OK();
}

StatusOr<std::vector<ResultEntry>> ContinuousSearchServer::Result(QueryId id) const {
  if (queries_.find(id) == queries_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  return CurrentResult(id);
}

void ContinuousSearchServer::ExpireOldest() {
  // Pop the document from the arena first: strategies that rescan the
  // valid documents during OnExpire (Naive's refill) must not see it. The
  // view stays readable until the arena reclaims at the event's end.
  const DocumentView expired = arena_->PopOldest();
  OnExpire(expired);
  ++stats_.documents_expired;
}

void ContinuousSearchServer::MarkResultChanged(QueryId id) {
  notifier_.Mark(id);
}

void ContinuousSearchServer::FlushNotifications() {
  notifier_.Flush([this](QueryId id) { return CurrentResult(id); });
}

void ContinuousSearchServer::RefreshArenaGauges() {
  if (!owns_arena()) return;  // the embedding driver owns those gauges
  stats_.arena_segments = arena_->segment_count();
  stats_.document_bytes = arena_->document_bytes();
}

const Query& ContinuousSearchServer::GetQuery(QueryId id) const {
  const auto it = queries_.find(id);
  ITA_CHECK(it != queries_.end()) << "unknown query id " << id;
  return it->second;
}

StatusOr<std::vector<std::pair<QueryId, Query>>> ReadQueryRegistry(
    const persist::SnapshotReader& snapshot) {
  ITA_ASSIGN_OR_RETURN(const std::string_view core,
                       snapshot.Section("server/core"));
  persist::WireReader r(core);

  // The "server/core" prefix up to the registry (the layout Checkpoint
  // writes): name, window spec, arena-ownership flag, id sequence,
  // watermark. A cross-shape reader takes none of it as a precondition —
  // the restoring driver already validated its own meta section.
  std::string snap_name;
  ITA_RETURN_NOT_OK(r.ReadString(&snap_name));
  std::uint8_t kind = 0;
  std::uint64_t count = 0;
  std::int64_t duration = 0;
  bool snap_owned = false;
  std::uint32_t next_id = 0;
  std::int64_t last_arrival = 0;
  ITA_RETURN_NOT_OK(r.ReadU8(&kind));
  ITA_RETURN_NOT_OK(r.ReadU64(&count));
  ITA_RETURN_NOT_OK(r.ReadI64(&duration));
  ITA_RETURN_NOT_OK(r.ReadBool(&snap_owned));
  ITA_RETURN_NOT_OK(r.ReadU32(&next_id));
  ITA_RETURN_NOT_OK(r.ReadI64(&last_arrival));

  std::uint64_t n_queries = 0;
  ITA_RETURN_NOT_OK(r.ReadCount(&n_queries, 16));
  std::vector<std::pair<QueryId, Query>> registry;
  registry.reserve(n_queries);
  for (std::uint64_t i = 0; i < n_queries; ++i) {
    std::uint32_t id = 0;
    std::uint32_t k = 0;
    ITA_RETURN_NOT_OK(r.ReadU32(&id));
    ITA_RETURN_NOT_OK(r.ReadU32(&k));
    Query query;
    query.k = static_cast<int>(k);
    std::uint64_t n_terms = 0;
    ITA_RETURN_NOT_OK(r.ReadCount(&n_terms, 12));
    query.terms.reserve(n_terms);
    for (std::uint64_t t = 0; t < n_terms; ++t) {
      TermWeight tw;
      ITA_RETURN_NOT_OK(r.ReadU32(&tw.term));
      ITA_RETURN_NOT_OK(r.ReadDouble(&tw.weight));
      query.terms.push_back(tw);
    }
    ITA_RETURN_NOT_OK(ValidateQuery(query));
    registry.emplace_back(id, std::move(query));
  }
  // Checkpoint writes the registry sorted; enforce rather than trust, so
  // a hand-edited snapshot cannot smuggle a duplicate past the caller.
  std::sort(registry.begin(), registry.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < registry.size(); ++i) {
    if (registry[i].first == registry[i - 1].first) {
      return Status::IoError("snapshot: duplicate query id " +
                             std::to_string(registry[i].first));
    }
  }
  return registry;
}

}  // namespace ita
