#include "core/server.h"

#include <algorithm>

#include "common/logging.h"

namespace ita {

ContinuousSearchServer::ContinuousSearchServer(ServerOptions options)
    : options_(options) {
  ITA_CHECK_OK(options_.window.Validate());
}

StatusOr<QueryId> ContinuousSearchServer::RegisterQuery(Query query) {
  ITA_RETURN_NOT_OK(ValidateQuery(query));
  const QueryId id = next_query_id_++;
  ITA_RETURN_NOT_OK(InstallQuery(id, std::move(query)));
  return id;
}

Status ContinuousSearchServer::RegisterQueryWithId(QueryId id, Query query) {
  ITA_RETURN_NOT_OK(ValidateQuery(query));
  if (id == kInvalidQueryId) {
    return Status::InvalidArgument("reserved query id");
  }
  if (queries_.find(id) != queries_.end()) {
    return Status::InvalidArgument("query id " + std::to_string(id) +
                                   " already in use");
  }
  next_query_id_ = std::max(next_query_id_, id + 1);
  return InstallQuery(id, std::move(query));
}

Status ContinuousSearchServer::InstallQuery(QueryId id, Query query) {
  const auto [it, inserted] = queries_.emplace(id, std::move(query));
  ITA_DCHECK(inserted);
  const Status status = OnRegisterQuery(id, it->second);
  if (!status.ok()) {
    queries_.erase(it);
    return status;
  }
  return Status::OK();
}

Status ContinuousSearchServer::UnregisterQuery(QueryId id) {
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  ITA_RETURN_NOT_OK(OnUnregisterQuery(id));
  queries_.erase(it);
  notifier_.Unmark(id);
  return Status::OK();
}

StatusOr<DocId> ContinuousSearchServer::Ingest(Document document) {
  if (document.arrival_time < last_arrival_time_) {
    return Status::InvalidArgument(
        "document arrival times must be non-decreasing");
  }
  last_arrival_time_ = document.arrival_time;

  // Expire documents the new arrival pushes out of the window — "a
  // document d_ins arrives, forcing an existing one d_del to expire".
  if (options_.window.kind == WindowSpec::Kind::kCountBased) {
    while (store_.size() >= options_.window.count) ExpireOldest();
  } else {
    while (!store_.empty() &&
           !options_.window.ValidAt(store_.Oldest().arrival_time,
                                    document.arrival_time)) {
      ExpireOldest();
    }
  }

  const DocId id = store_.Append(std::move(document));
  const Document* stored = store_.Get(id);
  ITA_DCHECK(stored != nullptr);
  OnArrive(*stored);
  ++stats_.documents_ingested;

  FlushNotifications();
  return id;
}

StatusOr<EpochPlan> ContinuousSearchServer::PlanEpoch(
    const std::vector<Document>& batch) const {
  if (batch.empty()) {
    return Status::InvalidArgument("epoch batch may not be empty");
  }
  Timestamp prev = last_arrival_time_;
  for (const Document& doc : batch) {
    if (doc.arrival_time < prev) {
      return Status::InvalidArgument(
          "document arrival times must be non-decreasing");
    }
    prev = doc.arrival_time;
  }

  EpochPlan plan;
  plan.epoch_end = batch.back().arrival_time;

  // Transient prefix: batch documents that would arrive *and* expire
  // within this epoch. They exist only when the batch alone overflows the
  // window — in which case every previously valid document expires too
  // (transients are newer than all of them), leaving the store empty
  // before the survivors are appended.
  if (options_.window.kind == WindowSpec::Kind::kCountBased) {
    if (batch.size() > options_.window.count) {
      plan.first_survivor = batch.size() - options_.window.count;
    }
  } else {
    while (plan.first_survivor < batch.size() &&
           !options_.window.ValidAt(batch[plan.first_survivor].arrival_time,
                                    plan.epoch_end)) {
      ++plan.first_survivor;
    }
  }
  plan.arriving = batch.size() - plan.first_survivor;
  return plan;
}

void ContinuousSearchServer::RunExpirePhase(const EpochPlan& plan) {
  last_arrival_time_ = std::max(last_arrival_time_, plan.epoch_end);

  // Expire the valid documents the epoch pushes out, as one batch. For a
  // count-based window the arrivals do the pushing; a pure-expiry plan
  // (arriving = 0) cannot overflow it and expires nothing.
  std::vector<Document> expired;
  if (options_.window.kind == WindowSpec::Kind::kCountBased) {
    while (!store_.empty() &&
           store_.size() + plan.arriving > options_.window.count) {
      expired.push_back(store_.PopOldest());
    }
  } else {
    while (!store_.empty() && !options_.window.ValidAt(
                                  store_.Oldest().arrival_time, plan.epoch_end)) {
      expired.push_back(store_.PopOldest());
    }
  }
  if (!expired.empty()) {
    OnExpireBatch(expired);
    stats_.documents_expired += expired.size();
  }
}

std::vector<DocId> ContinuousSearchServer::RunArrivePhase(
    const EpochPlan& plan, std::vector<Document> batch) {
  last_arrival_time_ = std::max(last_arrival_time_, plan.epoch_end);

  std::vector<DocId> ids;
  ids.reserve(batch.size());

  // Transients get ids (keeping the id sequence identical to sequential
  // ingestion) but never reach the strategy hooks.
  for (std::size_t i = 0; i < plan.first_survivor; ++i) {
    ITA_DCHECK(store_.empty());
    ids.push_back(store_.Append(std::move(batch[i])));
    store_.PopOldest();
    ++stats_.documents_expired;
  }

  std::vector<const Document*> arrived;
  arrived.reserve(plan.arriving);
  for (std::size_t i = plan.first_survivor; i < batch.size(); ++i) {
    const DocId id = store_.Append(std::move(batch[i]));
    ids.push_back(id);
    arrived.push_back(store_.Get(id));
  }
  if (!arrived.empty()) OnArriveBatch(arrived);

  stats_.documents_ingested += batch.size();
  ++stats_.batches_ingested;
  return ids;
}

StatusOr<std::vector<DocId>> ContinuousSearchServer::IngestBatch(
    std::vector<Document> batch) {
  if (batch.empty()) return std::vector<DocId>{};
  EpochPlan plan;
  {
    const auto planned = PlanEpoch(batch);
    ITA_RETURN_NOT_OK(planned.status());
    plan = *planned;
  }
  RunExpirePhase(plan);
  std::vector<DocId> ids = RunArrivePhase(plan, std::move(batch));
  FlushNotifications();
  return ids;
}

Status ContinuousSearchServer::AdvanceTime(Timestamp now) {
  if (now < last_arrival_time_) {
    return Status::InvalidArgument("time may not move backwards");
  }
  EpochPlan plan;
  plan.epoch_end = now;
  RunExpirePhase(plan);
  FlushNotifications();
  return Status::OK();
}

StatusOr<std::vector<ResultEntry>> ContinuousSearchServer::Result(QueryId id) const {
  if (queries_.find(id) == queries_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  return CurrentResult(id);
}

void ContinuousSearchServer::ExpireOldest() {
  // Remove the document from the store first: strategies that rescan the
  // valid documents during OnExpire (Naive's refill) must not see it.
  const Document expired = store_.PopOldest();
  OnExpire(expired);
  ++stats_.documents_expired;
}

void ContinuousSearchServer::MarkResultChanged(QueryId id) {
  notifier_.Mark(id);
}

void ContinuousSearchServer::FlushNotifications() {
  notifier_.Flush([this](QueryId id) { return CurrentResult(id); });
}

const Query& ContinuousSearchServer::GetQuery(QueryId id) const {
  const auto it = queries_.find(id);
  ITA_CHECK(it != queries_.end()) << "unknown query id " << id;
  return it->second;
}

}  // namespace ita
