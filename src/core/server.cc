#include "core/server.h"

#include <algorithm>

#include "common/logging.h"

namespace ita {

ContinuousSearchServer::ContinuousSearchServer(ServerOptions options)
    : options_(options) {
  ITA_CHECK_OK(options_.window.Validate());
}

StatusOr<QueryId> ContinuousSearchServer::RegisterQuery(Query query) {
  ITA_RETURN_NOT_OK(ValidateQuery(query));
  const QueryId id = next_query_id_++;
  const auto [it, inserted] = queries_.emplace(id, std::move(query));
  ITA_DCHECK(inserted);
  const Status status = OnRegisterQuery(id, it->second);
  if (!status.ok()) {
    queries_.erase(it);
    return status;
  }
  return id;
}

Status ContinuousSearchServer::UnregisterQuery(QueryId id) {
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  ITA_RETURN_NOT_OK(OnUnregisterQuery(id));
  queries_.erase(it);
  return Status::OK();
}

StatusOr<DocId> ContinuousSearchServer::Ingest(Document document) {
  if (document.arrival_time < last_arrival_time_) {
    return Status::InvalidArgument(
        "document arrival times must be non-decreasing");
  }
  last_arrival_time_ = document.arrival_time;

  // Expire documents the new arrival pushes out of the window — "a
  // document d_ins arrives, forcing an existing one d_del to expire".
  if (options_.window.kind == WindowSpec::Kind::kCountBased) {
    while (store_.size() >= options_.window.count) ExpireOldest();
  } else {
    while (!store_.empty() &&
           !options_.window.ValidAt(store_.Oldest().arrival_time,
                                    document.arrival_time)) {
      ExpireOldest();
    }
  }

  const DocId id = store_.Append(std::move(document));
  const Document* stored = store_.Get(id);
  ITA_DCHECK(stored != nullptr);
  OnArrive(*stored);
  ++stats_.documents_ingested;

  FlushNotifications();
  return id;
}

StatusOr<std::vector<DocId>> ContinuousSearchServer::IngestBatch(
    std::vector<Document> batch) {
  if (batch.empty()) return std::vector<DocId>{};
  Timestamp prev = last_arrival_time_;
  for (const Document& doc : batch) {
    if (doc.arrival_time < prev) {
      return Status::InvalidArgument(
          "document arrival times must be non-decreasing");
    }
    prev = doc.arrival_time;
  }
  const Timestamp epoch_end = batch.back().arrival_time;
  last_arrival_time_ = epoch_end;

  // Transient prefix: batch documents that would arrive *and* expire
  // within this epoch. They exist only when the batch alone overflows the
  // window — in which case every previously valid document expires too
  // (transients are newer than all of them), leaving the store empty
  // before the survivors are appended.
  std::size_t first_survivor = 0;
  if (options_.window.kind == WindowSpec::Kind::kCountBased) {
    if (batch.size() > options_.window.count) {
      first_survivor = batch.size() - options_.window.count;
    }
  } else {
    while (first_survivor < batch.size() &&
           !options_.window.ValidAt(batch[first_survivor].arrival_time,
                                    epoch_end)) {
      ++first_survivor;
    }
  }
  const std::size_t arriving = batch.size() - first_survivor;

  // Expire the valid documents the epoch pushes out, as one batch.
  std::vector<Document> expired;
  if (options_.window.kind == WindowSpec::Kind::kCountBased) {
    while (!store_.empty() && store_.size() + arriving > options_.window.count) {
      expired.push_back(store_.PopOldest());
    }
  } else {
    while (!store_.empty() &&
           !options_.window.ValidAt(store_.Oldest().arrival_time, epoch_end)) {
      expired.push_back(store_.PopOldest());
    }
  }
  if (!expired.empty()) {
    OnExpireBatch(expired);
    stats_.documents_expired += expired.size();
  }

  std::vector<DocId> ids;
  ids.reserve(batch.size());

  // Transients get ids (keeping the id sequence identical to sequential
  // ingestion) but never reach the strategy hooks.
  for (std::size_t i = 0; i < first_survivor; ++i) {
    ITA_DCHECK(store_.empty());
    ids.push_back(store_.Append(std::move(batch[i])));
    store_.PopOldest();
    ++stats_.documents_expired;
  }

  std::vector<const Document*> arrived;
  arrived.reserve(arriving);
  for (std::size_t i = first_survivor; i < batch.size(); ++i) {
    const DocId id = store_.Append(std::move(batch[i]));
    ids.push_back(id);
    arrived.push_back(store_.Get(id));
  }
  if (!arrived.empty()) OnArriveBatch(arrived);

  stats_.documents_ingested += batch.size();
  ++stats_.batches_ingested;
  FlushNotifications();
  return ids;
}

Status ContinuousSearchServer::AdvanceTime(Timestamp now) {
  if (now < last_arrival_time_) {
    return Status::InvalidArgument("time may not move backwards");
  }
  last_arrival_time_ = now;
  if (options_.window.kind == WindowSpec::Kind::kTimeBased) {
    std::vector<Document> expired;
    while (!store_.empty() &&
           !options_.window.ValidAt(store_.Oldest().arrival_time, now)) {
      expired.push_back(store_.PopOldest());
    }
    if (!expired.empty()) {
      OnExpireBatch(expired);
      stats_.documents_expired += expired.size();
    }
  }
  FlushNotifications();
  return Status::OK();
}

StatusOr<std::vector<ResultEntry>> ContinuousSearchServer::Result(QueryId id) const {
  if (queries_.find(id) == queries_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  return CurrentResult(id);
}

void ContinuousSearchServer::ExpireOldest() {
  // Remove the document from the store first: strategies that rescan the
  // valid documents during OnExpire (Naive's refill) must not see it.
  const Document expired = store_.PopOldest();
  OnExpire(expired);
  ++stats_.documents_expired;
}

void ContinuousSearchServer::MarkResultChanged(QueryId id) {
  if (listener_ == nullptr) return;
  if (std::find(changed_queries_.begin(), changed_queries_.end(), id) ==
      changed_queries_.end()) {
    changed_queries_.push_back(id);
  }
}

void ContinuousSearchServer::FlushNotifications() {
  if (listener_ == nullptr || changed_queries_.empty()) return;
  for (const QueryId id : changed_queries_) {
    listener_(id, CurrentResult(id));
  }
  changed_queries_.clear();
}

const Query& ContinuousSearchServer::GetQuery(QueryId id) const {
  const auto it = queries_.find(id);
  ITA_CHECK(it != queries_.end()) << "unknown query id " << id;
  return it->second;
}

}  // namespace ita
