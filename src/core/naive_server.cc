#include "core/naive_server.h"

#include <cmath>

#include "common/logging.h"
#include "container/bounded_heap.h"

namespace ita {

std::size_t NaiveServer::KMaxFor(int k) const {
  const double scaled = std::ceil(tuning_.kmax_factor * static_cast<double>(k));
  const std::size_t kmax = static_cast<std::size_t>(scaled);
  return kmax > static_cast<std::size_t>(k) ? kmax : static_cast<std::size_t>(k);
}

Status NaiveServer::OnRegisterQuery(QueryId id, const Query& query) {
  auto state = std::make_unique<QueryState>();
  state->id = id;
  state->query = &query;
  state->kmax = KMaxFor(query.k);
  QueryState* raw = state.get();
  states_.emplace(id, std::move(state));
  Refill(*raw);  // initial evaluation scans all valid documents
  return Status::OK();
}

Status NaiveServer::OnUnregisterQuery(QueryId id) {
  const auto it = states_.find(id);
  ITA_CHECK(it != states_.end());
  states_.erase(it);
  return Status::OK();
}

void NaiveServer::OnArrive(const DocumentView& doc) {
  ServerStats& stats = mutable_stats();
  for (auto& [id, state_ptr] : states_) {
    QueryState& state = *state_ptr;
    // Naive computes S(d_ins|Q) for every user query Q.
    const double score = ScoreDocument(doc.composition, state.query->terms);
    ++stats.scores_computed;
    if (score <= 0.0) continue;

    const std::size_t k = static_cast<std::size_t>(state.query->k);
    const double sk_before = state.view.KthScore(k);

    if (state.complete) {
      // The view holds every matching document; admit unconditionally.
      state.view.Insert(doc.id, score);
      ++stats.result_insertions;
      if (state.view.size() > state.kmax) {
        // Evict the worst; from now on matchers exist outside the view.
        state.view.Erase(state.view.Worst()->doc);
        ++stats.result_removals;
        state.complete = false;
      }
    } else {
      // view = exact top-k'; admit only documents that enter it. Ties
      // admit (newer documents outrank equal-scored older ones).
      const auto worst = state.view.Worst();
      if (!worst.has_value() || score >= worst->score) {
        state.view.Insert(doc.id, score);
        ++stats.result_insertions;
        if (state.view.size() > state.kmax) {
          state.view.Erase(state.view.Worst()->doc);
          ++stats.result_removals;
        }
      }
    }

    if (score >= sk_before) MarkResultChanged(state.id);
  }
}

void NaiveServer::OnExpire(const DocumentView& doc) {
  ServerStats& stats = mutable_stats();
  for (auto& [id, state_ptr] : states_) {
    QueryState& state = *state_ptr;
    // Naive checks whether d_del is in R for every query.
    ++stats.membership_checks;
    if (!state.view.Contains(doc.id)) continue;

    const std::size_t k = static_cast<std::size_t>(state.query->k);
    const bool was_topk = state.view.InTopK(doc.id, k);
    state.view.Erase(doc.id);
    ++stats.result_removals;
    if (was_topk) MarkResultChanged(state.id);

    if (state.view.size() < k &&
        !(tuning_.skip_complete_rescans && state.complete)) {
      // Underflow: recompute the view from scratch (the expensive scan;
      // top-k_max per [6] to make these recomputations rarer). A complete
      // view cannot gain members from a rescan; the paper's baseline
      // rescans anyway, the tuning flag above opts out.
      Refill(state);
      ++stats.full_rescans;
    }
  }
}

void NaiveServer::Refill(QueryState& state) {
  struct RanksBefore {
    bool operator()(const ResultSet::Entry& a, const ResultSet::Entry& b) const {
      if (a.score != b.score) return a.score > b.score;
      return a.doc > b.doc;
    }
  };
  ServerStats& stats = mutable_stats();
  BoundedTopK<ResultSet::Entry, RanksBefore> heap(state.kmax);
  std::size_t matchers = 0;
  for (const DocumentView doc : store()) {
    const double score = ScoreDocument(doc.composition, state.query->terms);
    ++stats.scores_computed;
    if (score <= 0.0) continue;
    ++matchers;
    heap.Push(ResultSet::Entry{score, doc.id});
  }
  state.view.Clear();
  for (const ResultSet::Entry& entry : heap.TakeSorted()) {
    state.view.Insert(entry.doc, entry.score);
  }
  state.complete = matchers <= state.kmax;
  MarkResultChanged(state.id);
}

StatusOr<std::vector<ResultEntry>> NaiveServer::View(QueryId id) const {
  const auto it = states_.find(id);
  if (it == states_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  const QueryState& state = *it->second;
  std::vector<ResultEntry> out;
  out.reserve(state.view.size());
  for (const auto& entry : state.view) {
    out.push_back(ResultEntry{entry.doc, entry.score});
  }
  return out;
}

StatusOr<bool> NaiveServer::ViewComplete(QueryId id) const {
  const auto it = states_.find(id);
  if (it == states_.end()) {
    return Status::NotFound("no query with id " + std::to_string(id));
  }
  return it->second->complete;
}

std::vector<ResultEntry> NaiveServer::CurrentResult(QueryId id) const {
  const auto it = states_.find(id);
  ITA_CHECK(it != states_.end());
  const QueryState& state = *it->second;
  return state.view.TopK(static_cast<std::size_t>(state.query->k));
}

}  // namespace ita
