/// \file
/// A continuous text search query (Section II): a set of weighted search
/// terms plus the result size k. Queries are installed once at the server
/// and stay active until unregistered.

#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "stream/document.h"

namespace ita {

/// A continuous text search query: a set of weighted search terms plus
/// the result size k, installed once and active until unregistered.
struct Query {
  /// Number of result documents requested. Must be >= 1.
  int k = 0;
  /// Weighted search terms: sorted by ascending TermId, one entry per
  /// distinct term, all weights strictly positive. See BuildQueryVector.
  std::vector<TermWeight> terms;
  /// Original query string, kept for display purposes only.
  std::string text;
};

/// Validates the structural requirements above.
Status ValidateQuery(const Query& query);

/// The similarity score S(d|Q) = sum over shared terms of w_{Q,t} * w_{d,t}
/// (paper Formula 1). `query_terms` and `composition` must both be sorted
/// by ascending TermId. Accepts any contiguous composition — an owning
/// Document's vector or a DocumentView's slab span.
double ScoreDocument(std::span<const TermWeight> composition,
                     const std::vector<TermWeight>& query_terms);

}  // namespace ita
