/// \file
/// Brute-force ground truth: recomputes every result from scratch, on
/// demand, by scanning all valid documents. Used by the test suites to
/// verify ITA and Naive after every stream event; never benchmarked.

#pragma once

#include <string>
#include <unordered_map>

#include "core/server.h"

namespace ita {

/// The ground-truth strategy: no incremental state at all; every result
/// is recomputed on demand by a full window scan.
class OracleServer : public ContinuousSearchServer {
 public:
  /// Builds an oracle over `options` (window spec, optional shared arena).
  explicit OracleServer(ServerOptions options)
      : ContinuousSearchServer(options) {}

  /// ServerStrategy: the strategy name, "oracle".
  std::string name() const override { return "oracle"; }

 protected:
  /// Remembers the query; results are computed lazily.
  Status OnRegisterQuery(QueryId id, const Query& query) override;
  /// Forgets the query.
  Status OnUnregisterQuery(QueryId id) override;
  /// No-op: the oracle keeps no incremental state.
  void OnArrive(const DocumentView& doc) override;
  /// No-op: the oracle keeps no incremental state.
  void OnExpire(const DocumentView& doc) override;
  /// Brute-force top-k over all valid documents.
  std::vector<ResultEntry> CurrentResult(QueryId id) const override;

 private:
  std::unordered_map<QueryId, const Query*> registered_;
};

}  // namespace ita
