// Brute-force ground truth: recomputes every result from scratch, on
// demand, by scanning all valid documents. Used by the test suites to
// verify ITA and Naive after every stream event; never benchmarked.

#pragma once

#include <string>
#include <unordered_map>

#include "core/server.h"

namespace ita {

class OracleServer : public ContinuousSearchServer {
 public:
  explicit OracleServer(ServerOptions options)
      : ContinuousSearchServer(options) {}

  std::string name() const override { return "oracle"; }

 protected:
  Status OnRegisterQuery(QueryId id, const Query& query) override;
  Status OnUnregisterQuery(QueryId id) override;
  void OnArrive(const Document& doc) override;
  void OnExpire(const Document& doc) override;
  std::vector<ResultEntry> CurrentResult(QueryId id) const override;

 private:
  std::unordered_map<QueryId, const Query*> registered_;
};

}  // namespace ita
