#include "core/query.h"

#include <algorithm>
#include <sstream>

namespace ita {

Status ValidateQuery(const Query& query) {
  if (query.k < 1) {
    return Status::InvalidArgument("query requires k >= 1");
  }
  if (query.terms.empty()) {
    return Status::InvalidArgument("query has no effective search terms");
  }
  TermId prev = kInvalidTermId;
  for (std::size_t i = 0; i < query.terms.size(); ++i) {
    const TermWeight& tw = query.terms[i];
    if (tw.weight <= 0.0) {
      std::ostringstream os;
      os << "query term " << tw.term << " has non-positive weight " << tw.weight;
      return Status::InvalidArgument(os.str());
    }
    if (i > 0 && tw.term <= prev) {
      return Status::InvalidArgument(
          "query terms must be sorted by ascending TermId and distinct");
    }
    prev = tw.term;
  }
  return Status::OK();
}

double ScoreDocument(std::span<const TermWeight> composition,
                     const std::vector<TermWeight>& query_terms) {
  // The query side is short (a handful of terms); binary-search each query
  // term in the document's composition list.
  double score = 0.0;
  auto begin = composition.begin();
  for (const TermWeight& qt : query_terms) {
    const auto it = std::lower_bound(
        begin, composition.end(), qt.term,
        [](const TermWeight& tw, TermId term) { return tw.term < term; });
    if (it != composition.end() && it->term == qt.term) {
      score += qt.weight * it->weight;
      begin = it + 1;  // query terms ascend, so the search range shrinks
    } else {
      begin = it;
    }
  }
  return score;
}

}  // namespace ita
