#include "core/term_catalog.h"

#include <algorithm>

#include "common/logging.h"

namespace ita {

TermCatalog::TierMigrations TermCatalog::ApplyTierMigrations() {
  TierMigrations out;
  if (epoch_work_.empty()) return out;
  const TierPolicy& p = tier_policy_;
  std::size_t migrations = 0;
  for (const auto& [term, work] : epoch_work_) {
    TermState& ts = states_[term];
    ts.work_ema = p.alpha * static_cast<double>(work) +
                  (1.0 - p.alpha) * ts.work_ema;
    if (migrations >= p.max_migrations_per_epoch) continue;
    if (!ts.hot_tier && ts.work_ema >= p.promote_ema) {
      ts.list.SetBlockBits(p.hot_block_bits);
      ts.tree.SetWideProbe(true);
      ts.hot_tier = true;
      ++hot_terms_;
      ++out.promotions;
      ++migrations;
    } else if (ts.hot_tier && ts.work_ema <= p.demote_ema) {
      ts.list.SetBlockBits(InvertedList::kBlockBits);
      ts.tree.SetWideProbe(false);
      ts.hot_tier = false;
      --hot_terms_;
      ++out.demotions;
      ++migrations;
    }
  }
  epoch_work_.clear();
  return out;
}

std::size_t TermCatalog::AddDocument(const Document& doc) {
  ITA_DCHECK(doc.id != kInvalidDocId) << "document must have an id before indexing";
  for (const TermWeight& tw : doc.composition) {
    const bool inserted = InsertPosting(Ensure(tw.term), doc.id, tw.weight);
    ITA_CHECK(inserted) << "duplicate posting for doc " << doc.id << " term "
                        << tw.term;
  }
  return doc.composition.size();
}

std::size_t TermCatalog::RemoveDocument(const Document& doc) {
  std::size_t removed = 0;
  for (const TermWeight& tw : doc.composition) {
    TermState* ts = Find(tw.term);
    ITA_CHECK(ts != nullptr) << "no term state for term " << tw.term;
    const bool erased = ErasePosting(*ts, doc.id, tw.weight);
    ITA_CHECK(erased) << "missing posting for doc " << doc.id << " term "
                      << tw.term;
    ++removed;
  }
  return removed;
}

template <typename Apply>
std::size_t TermCatalog::ForEachTermRun(Apply&& apply) {
  // Group per term; within a term the entries must follow ImpactOrder
  // (weight desc, doc desc) so each group is a valid ordered run.
  std::sort(batch_scratch_.begin(), batch_scratch_.end(),
            [](const FlatPosting& a, const FlatPosting& b) {
              if (a.term != b.term) return a.term < b.term;
              return ImpactOrder{}(a.entry, b.entry);
            });
  std::size_t applied = 0;
  for (std::size_t lo = 0; lo < batch_scratch_.size();) {
    const TermId term = batch_scratch_[lo].term;
    std::size_t hi = lo;
    while (hi < batch_scratch_.size() && batch_scratch_[hi].term == term) ++hi;
    applied += apply(Ensure(term), lo, hi);
    lo = hi;
  }
  return applied;
}

std::size_t TermCatalog::AddBatch(const std::vector<const Document*>& docs) {
  batch_scratch_.clear();
  for (const Document* doc : docs) {
    ITA_DCHECK(doc->id != kInvalidDocId)
        << "document must have an id before indexing";
    for (const TermWeight& tw : doc->composition) {
      batch_scratch_.push_back(
          FlatPosting{tw.term, ImpactEntry{tw.weight, doc->id}});
    }
  }
  return ForEachTermRun([this](TermState& ts, std::size_t lo, std::size_t hi) {
    const std::size_t n =
        InsertRunInto(ts, EntryIterator{batch_scratch_.data() + lo},
                      EntryIterator{batch_scratch_.data() + hi});
    ITA_CHECK(n == hi - lo) << "duplicate posting in batch insert";
    return n;
  });
}

std::size_t TermCatalog::RemoveBatch(const std::vector<Document>& docs) {
  batch_scratch_.clear();
  for (const Document& doc : docs) {
    for (const TermWeight& tw : doc.composition) {
      batch_scratch_.push_back(
          FlatPosting{tw.term, ImpactEntry{tw.weight, doc.id}});
    }
  }
  return ForEachTermRun([this](TermState& ts, std::size_t lo, std::size_t hi) {
    const std::size_t n =
        EraseRunFrom(ts, EntryIterator{batch_scratch_.data() + lo},
                     EntryIterator{batch_scratch_.data() + hi});
    ITA_CHECK(n == hi - lo) << "missing posting in batch erase";
    return n;
  });
}

}  // namespace ita
